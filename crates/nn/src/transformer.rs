//! A decoder-only transformer with a real KV cache.
//!
//! This is the executable stand-in for the serving stack the paper drives
//! through HuggingFace `transformers`: RoPE positions, grouped-query
//! attention, SwiGLU MLPs and per-layer KV caching. It is used to (a)
//! validate decode mechanics — the logits a cached incremental decode
//! produces are exactly those of a from-scratch forward — and (b) put the
//! quantized kernels under a transformer-shaped load in the benchmarks,
//! demonstrating on a real code path why dequantization makes small models
//! slower (the paper's §3.3 finding).

use crate::linear::Linear;
use edgellm_quant::WeightPrecision;
use edgellm_tensor::ops::{rmsnorm_rows, rope_inplace, silu_inplace, softmax_inplace};
use edgellm_tensor::Matrix;
use rayon::prelude::*;

/// Transformer hyperparameters (a scaled-down `edgellm_models::ModelArch`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TinyConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Residual width.
    pub d_model: usize,
    /// Layer count.
    pub layers: usize,
    /// Query heads.
    pub heads: usize,
    /// Key/value heads (< heads ⇒ GQA).
    pub kv_heads: usize,
    /// Per-head width.
    pub head_dim: usize,
    /// MLP intermediate width.
    pub ffn: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl TinyConfig {
    /// A small config for tests and benches.
    pub fn small(seed: u64) -> Self {
        TinyConfig {
            vocab: 256,
            d_model: 64,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            head_dim: 16,
            ffn: 128,
            seed,
        }
    }

    fn q_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }
}

#[derive(Debug, Clone)]
struct Block {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    w_gate: Linear,
    w_up: Linear,
    w_down: Linear,
    norm_attn: Vec<f32>,
    norm_mlp: Vec<f32>,
}

/// Per-sequence key/value cache: one growable `(tokens × kv_dim)` buffer
/// per layer for keys and values.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    kv_dim: usize,
    tokens: usize,
}

impl KvCache {
    /// Empty cache for a model with `layers` layers.
    pub fn new(layers: usize, kv_dim: usize) -> Self {
        KvCache { k: vec![Vec::new(); layers], v: vec![Vec::new(); layers], kv_dim, tokens: 0 }
    }

    /// Tokens cached so far.
    pub fn len(&self) -> usize {
        self.tokens
    }

    /// True for a fresh cache.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Bytes held (f32 storage).
    pub fn bytes(&self) -> usize {
        self.k.iter().map(|l| l.len() * 4).sum::<usize>()
            + self.v.iter().map(|l| l.len() * 4).sum::<usize>()
    }

    /// Discard every cached token past the first `tokens` — the model
    /// half of block-granular preemption: the paged allocator keeps a
    /// prefix's blocks, the cache rolls back to exactly that prefix and
    /// [`TinyCausalLm::prefill_from`] resumes from there. No-op when
    /// the cache is already at or below `tokens`.
    pub fn truncate(&mut self, tokens: usize) {
        if tokens >= self.tokens {
            return;
        }
        for l in &mut self.k {
            l.truncate(tokens * self.kv_dim);
        }
        for l in &mut self.v {
            l.truncate(tokens * self.kv_dim);
        }
        self.tokens = tokens;
    }
}

/// The model.
#[derive(Debug, Clone)]
pub struct TinyCausalLm {
    /// Hyperparameters.
    pub cfg: TinyConfig,
    emb: Matrix,
    blocks: Vec<Block>,
    final_norm: Vec<f32>,
    lm_head: Linear,
}

impl TinyCausalLm {
    /// Randomly-initialized model (deterministic under the config seed).
    pub fn new(cfg: TinyConfig) -> Self {
        let mut seed = cfg.seed;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        let mk = |inf: usize, outf: usize, s: u64| {
            let mut l = Linear::new(inf, outf, s);
            l.bias = None;
            l
        };
        let blocks = (0..cfg.layers)
            .map(|_| Block {
                wq: mk(cfg.d_model, cfg.q_dim(), next()),
                wk: mk(cfg.d_model, cfg.kv_dim(), next()),
                wv: mk(cfg.d_model, cfg.kv_dim(), next()),
                wo: mk(cfg.q_dim(), cfg.d_model, next()),
                w_gate: mk(cfg.d_model, cfg.ffn, next()),
                w_up: mk(cfg.d_model, cfg.ffn, next()),
                w_down: mk(cfg.ffn, cfg.d_model, next()),
                norm_attn: vec![1.0; cfg.d_model],
                norm_mlp: vec![1.0; cfg.d_model],
            })
            .collect();
        TinyCausalLm {
            cfg,
            emb: Matrix::rand_normal(cfg.vocab, cfg.d_model, 0.05, next()),
            blocks,
            final_norm: vec![1.0; cfg.d_model],
            lm_head: mk(cfg.d_model, cfg.vocab, next()),
        }
    }

    /// Fresh cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.cfg.layers, self.cfg.kv_dim())
    }

    /// Decode one token: append it to the cache and return next-token
    /// logits. This is the auto-regressive inner loop whose cost the
    /// perf model simulates at device scale.
    pub fn forward_step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        #[cfg(feature = "trace")]
        let _span = edgellm_trace::span!("decode_step", "nn");
        let cfg = &self.cfg;
        let pos = cache.tokens;
        let mut h = Matrix::from_vec(1, cfg.d_model, self.emb.row(token as usize).to_vec());

        for (l, blk) in self.blocks.iter().enumerate() {
            // --- attention ---
            let mut xn = h.clone();
            rmsnorm_rows(&mut xn, &blk.norm_attn, 1e-6);
            let mut q = blk.wq.forward(&xn);
            let mut k = blk.wk.forward(&xn);
            let v = blk.wv.forward(&xn);
            rope_inplace(q.row_mut(0), cfg.head_dim, pos, 10000.0);
            rope_inplace(k.row_mut(0), cfg.head_dim, pos, 10000.0);
            cache.k[l].extend_from_slice(k.row(0));
            cache.v[l].extend_from_slice(v.row(0));

            let ctx = pos + 1;
            let group = cfg.heads / cfg.kv_heads;
            let scale = 1.0 / (cfg.head_dim as f32).sqrt();
            let mut attn_out = vec![0.0f32; cfg.q_dim()];
            let mut scores = vec![0.0f32; ctx];
            for head in 0..cfg.heads {
                let kv_head = head / group;
                let qh = &q.row(0)[head * cfg.head_dim..(head + 1) * cfg.head_dim];
                for (t, s) in scores.iter_mut().enumerate() {
                    let koff = t * cache.kv_dim + kv_head * cfg.head_dim;
                    let kh = &cache.k[l][koff..koff + cfg.head_dim];
                    *s = edgellm_tensor::matmul::dot(qh, kh) * scale;
                }
                softmax_inplace(&mut scores);
                let oh = &mut attn_out[head * cfg.head_dim..(head + 1) * cfg.head_dim];
                for (t, &w) in scores.iter().enumerate() {
                    let voff = t * cache.kv_dim + kv_head * cfg.head_dim;
                    let vh = &cache.v[l][voff..voff + cfg.head_dim];
                    for (o, &x) in oh.iter_mut().zip(vh) {
                        *o += w * x;
                    }
                }
            }
            let proj = blk.wo.forward(&Matrix::from_vec(1, cfg.q_dim(), attn_out));
            edgellm_tensor::ops::add_inplace(h.row_mut(0), proj.row(0));

            // --- SwiGLU MLP ---
            let mut xn = h.clone();
            rmsnorm_rows(&mut xn, &blk.norm_mlp, 1e-6);
            let mut gate = blk.w_gate.forward(&xn);
            silu_inplace(gate.as_mut_slice());
            let up = blk.w_up.forward(&xn);
            for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
                *g *= u;
            }
            let down = blk.w_down.forward(&gate);
            edgellm_tensor::ops::add_inplace(h.row_mut(0), down.row(0));
        }
        cache.tokens += 1;

        rmsnorm_rows(&mut h, &self.final_norm, 1e-6);
        self.lm_head.forward(&h).into_vec()
    }

    /// Batched prefill: consume all of `tokens` in one pass and return the
    /// `(tokens × vocab)` logits matrix (row `i` = logits after consuming
    /// `tokens[..=i]`).
    ///
    /// This is the compute-bound phase of the paper's prefill/decode split:
    /// every projection runs as one `(T × in)·(out × in)ᵀ` matmul instead
    /// of `T` single-row products, which is what lets the blocked kernels
    /// reuse weight tiles across the batch. Because every matmul kernel in
    /// `edgellm-tensor` computes each output element in a fixed
    /// per-element accumulation order (independent of batch size, dispatch
    /// path and thread count), the logits and the cache contents are
    /// **bit-identical** to calling [`Self::forward_step`] per token.
    pub fn prefill(&self, tokens: &[u32], cache: &mut KvCache) -> Matrix {
        #[cfg(feature = "trace")]
        let _span = edgellm_trace::span!("prefill", "nn");
        let cfg = &self.cfg;
        let t = tokens.len();
        if t == 0 {
            return Matrix::zeros(0, cfg.vocab);
        }
        let base = cache.tokens;
        let mut h = Matrix::zeros(t, cfg.d_model);
        for (i, &tok) in tokens.iter().enumerate() {
            h.row_mut(i).copy_from_slice(self.emb.row(tok as usize));
        }

        for (l, blk) in self.blocks.iter().enumerate() {
            // --- attention ---
            let mut xn = h.clone();
            rmsnorm_rows(&mut xn, &blk.norm_attn, 1e-6);
            let mut q = blk.wq.forward(&xn);
            let mut k = blk.wk.forward(&xn);
            let v = blk.wv.forward(&xn);
            for i in 0..t {
                rope_inplace(q.row_mut(i), cfg.head_dim, base + i, 10000.0);
                rope_inplace(k.row_mut(i), cfg.head_dim, base + i, 10000.0);
                cache.k[l].extend_from_slice(k.row(i));
                cache.v[l].extend_from_slice(v.row(i));
            }

            let group = cfg.heads / cfg.kv_heads;
            let scale = 1.0 / (cfg.head_dim as f32).sqrt();
            let mut attn = Matrix::zeros(t, cfg.q_dim());
            // Each token's causal attention (over its own prefix only) is
            // independent — parallelize across the batch. Per-token math is
            // exactly the forward_step loop, so partitioning cannot change
            // the bits.
            let (kl, vl) = (&cache.k[l], &cache.v[l]);
            let kv_dim = cache.kv_dim;
            attn.as_mut_slice().par_chunks_mut(cfg.q_dim()).enumerate().for_each(|(i, arow)| {
                let ctx = base + i + 1;
                let mut scores = vec![0.0f32; ctx];
                for head in 0..cfg.heads {
                    let kv_head = head / group;
                    let qh = &q.row(i)[head * cfg.head_dim..(head + 1) * cfg.head_dim];
                    for (tt, s) in scores.iter_mut().enumerate() {
                        let koff = tt * kv_dim + kv_head * cfg.head_dim;
                        *s =
                            edgellm_tensor::matmul::dot(qh, &kl[koff..koff + cfg.head_dim]) * scale;
                    }
                    softmax_inplace(&mut scores);
                    let oh = &mut arow[head * cfg.head_dim..(head + 1) * cfg.head_dim];
                    for (tt, &w) in scores.iter().enumerate() {
                        let voff = tt * kv_dim + kv_head * cfg.head_dim;
                        for (o, &x) in oh.iter_mut().zip(&vl[voff..voff + cfg.head_dim]) {
                            *o += w * x;
                        }
                    }
                }
            });
            let proj = blk.wo.forward(&attn);
            for i in 0..t {
                edgellm_tensor::ops::add_inplace(h.row_mut(i), proj.row(i));
            }

            // --- SwiGLU MLP ---
            let mut xn = h.clone();
            rmsnorm_rows(&mut xn, &blk.norm_mlp, 1e-6);
            let mut gate = blk.w_gate.forward(&xn);
            silu_inplace(gate.as_mut_slice());
            let up = blk.w_up.forward(&xn);
            for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
                *g *= u;
            }
            let down = blk.w_down.forward(&gate);
            for i in 0..t {
                edgellm_tensor::ops::add_inplace(h.row_mut(i), down.row(i));
            }
        }
        cache.tokens += t;

        rmsnorm_rows(&mut h, &self.final_norm, 1e-6);
        self.lm_head.forward(&h)
    }

    /// Resume prefill from a cached prefix: roll `cache` back to its
    /// first `cache_len` tokens (what the paged KV cache still holds —
    /// a radix prefix hit, or the surviving blocks after a preemption)
    /// and prefill only the uncached suffix `tokens[cache_len..]`.
    ///
    /// Returns the suffix logits (row `i` = logits after
    /// `tokens[..=cache_len + i]`; zero rows when the prompt was fully
    /// cached). Because every kernel accumulates in a fixed per-element
    /// order regardless of batch shape, the resumed logits and final
    /// cache are **bit-identical** to a cold [`Self::prefill`] of the
    /// whole prompt — the equivalence the serve scheduler's
    /// cached-suffix billing relies on.
    ///
    /// # Panics
    /// When `cache_len` exceeds the prompt length or the cache's fill.
    pub fn prefill_from(&self, cache_len: usize, tokens: &[u32], cache: &mut KvCache) -> Matrix {
        assert!(
            cache_len <= tokens.len(),
            "cached prefix {cache_len} longer than prompt {}",
            tokens.len()
        );
        assert!(
            cache_len <= cache.len(),
            "cache holds {} tokens, cannot resume from {cache_len}",
            cache.len()
        );
        cache.truncate(cache_len);
        self.prefill(&tokens[cache_len..], cache)
    }

    /// Logits after consuming all of `tokens` from a fresh cache.
    pub fn full_logits(&self, tokens: &[u32]) -> Vec<f32> {
        let mut cache = self.new_cache();
        let logits = self.prefill(tokens, &mut cache);
        if logits.rows == 0 {
            return Vec::new();
        }
        logits.row(logits.rows - 1).to_vec()
    }

    /// Greedy-decode `n` tokens after a prompt (batched prefill, then the
    /// auto-regressive decode loop).
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        let mut cache = self.new_cache();
        let mut logits = if prompt.is_empty() {
            vec![0.0]
        } else {
            let lg = self.prefill(prompt, &mut cache);
            lg.row(lg.rows - 1).to_vec()
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = edgellm_tensor::sampling::argmax(&logits) as u32;
            out.push(t);
            logits = self.forward_step(t, &mut cache);
        }
        out
    }

    /// A copy with every projection at the given precision (embeddings and
    /// norms stay high precision, as on device).
    pub fn to_precision(&self, prec: WeightPrecision) -> TinyCausalLm {
        TinyCausalLm {
            cfg: self.cfg,
            emb: self.emb.clone(),
            blocks: self
                .blocks
                .iter()
                .map(|b| Block {
                    wq: b.wq.to_precision(prec),
                    wk: b.wk.to_precision(prec),
                    wv: b.wv.to_precision(prec),
                    wo: b.wo.to_precision(prec),
                    w_gate: b.w_gate.to_precision(prec),
                    w_up: b.w_up.to_precision(prec),
                    w_down: b.w_down.to_precision(prec),
                    norm_attn: b.norm_attn.clone(),
                    norm_mlp: b.norm_mlp.clone(),
                })
                .collect(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.to_precision(prec),
        }
    }
}

impl crate::scorer::CausalScorer for TinyCausalLm {
    fn vocab_size(&self) -> usize {
        self.cfg.vocab
    }

    /// NLL of `window[pos]` given the full preceding window — a real
    /// transformer scorer (O(n) per position through the KV cache).
    fn nll_at(&self, window: &[u32], pos: usize) -> f64 {
        let logits = self.full_logits(&window[..pos]);
        let ls = edgellm_tensor::ops::log_softmax(&logits);
        -ls[window[pos] as usize % self.cfg.vocab] as f64
    }

    /// Batched span scoring: one batched prefill over the window — token
    /// `window[start + i]` is scored against logits row `start + i − 1`
    /// (the logits after its prefix), all produced by a single pass.
    fn nll_span(&self, window: &[u32], start: usize) -> Vec<f64> {
        assert!(start >= 1, "need at least one context token");
        let mut cache = self.new_cache();
        let logits = self.prefill(window, &mut cache);
        window[start..]
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let ls = edgellm_tensor::ops::log_softmax(logits.row(start + i - 1));
                -ls[t as usize % self.cfg.vocab] as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logits_are_finite_and_deterministic() {
        let m = TinyCausalLm::new(TinyConfig::small(1));
        let a = m.full_logits(&[1, 2, 3, 4]);
        let b = m.full_logits(&[1, 2, 3, 4]);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn cache_prefix_purity() {
        // Logits observed mid-stream must not depend on future tokens.
        let m = TinyCausalLm::new(TinyConfig::small(2));
        let prefix = [5u32, 9, 17];
        let last_of_prefix = m.full_logits(&prefix);
        let mut cache = m.new_cache();
        let mut seen = Vec::new();
        for &t in prefix.iter().chain([33u32, 44].iter()) {
            let l = m.forward_step(t, &mut cache);
            seen.push(l);
        }
        assert_eq!(seen[2], last_of_prefix);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn prefill_is_bitwise_equal_to_stepping() {
        // The load-bearing equivalence: batched prefill and token-by-token
        // decode must agree to the bit, at every precision.
        let base_model = TinyCausalLm::new(TinyConfig::small(11));
        let tokens = [3u32, 200, 17, 91, 4, 55, 120];
        for prec in [
            None,
            Some(WeightPrecision::Fp16),
            Some(WeightPrecision::Int8),
            Some(WeightPrecision::Int4),
        ] {
            let m = match prec {
                None => base_model.clone(),
                Some(p) => base_model.to_precision(p),
            };
            let mut step_cache = m.new_cache();
            let stepped: Vec<Vec<f32>> =
                tokens.iter().map(|&t| m.forward_step(t, &mut step_cache)).collect();
            let mut pre_cache = m.new_cache();
            let batched = m.prefill(&tokens, &mut pre_cache);
            for (i, srow) in stepped.iter().enumerate() {
                assert_eq!(batched.row(i), srow.as_slice(), "{prec:?} row {i}");
            }
            assert_eq!(pre_cache.len(), step_cache.len(), "{prec:?}");
            assert_eq!(pre_cache.k, step_cache.k, "{prec:?} cached keys");
            assert_eq!(pre_cache.v, step_cache.v, "{prec:?} cached values");
        }
    }

    #[test]
    fn prefill_resumes_mid_stream() {
        // prefill after a partially-filled cache continues the sequence.
        let m = TinyCausalLm::new(TinyConfig::small(12));
        let mut cache = m.new_cache();
        m.forward_step(9, &mut cache);
        m.forward_step(30, &mut cache);
        let batched = m.prefill(&[7, 2, 101], &mut cache);
        assert_eq!(cache.len(), 5);
        assert_eq!(batched.row(2), m.full_logits(&[9, 30, 7, 2, 101]).as_slice());
    }

    #[test]
    fn prefill_from_matches_cold_prefill_at_all_precisions() {
        // The serve-layer equivalence: resuming from a cached shared
        // prefix (what a radix hit hands the model) must reproduce the
        // cold full-prompt prefill bit for bit — logits and cache.
        let base_model = TinyCausalLm::new(TinyConfig::small(21));
        let shared: Vec<u32> = vec![4, 90, 7, 255, 31, 18];
        let mut a = shared.clone();
        a.extend([10, 11, 12]);
        let mut b = shared.clone();
        b.extend([200, 100, 50, 25]);
        for prec in [
            None,
            Some(WeightPrecision::Fp16),
            Some(WeightPrecision::Int8),
            Some(WeightPrecision::Int4),
        ] {
            let m = match prec {
                None => base_model.clone(),
                Some(p) => base_model.to_precision(p),
            };
            let mut cold_cache = m.new_cache();
            let cold = m.prefill(&b, &mut cold_cache);
            // Warm path: request `a` populated the cache; request `b`
            // resumes from the shared prefix `a` left behind.
            let mut cache = m.new_cache();
            m.prefill(&a, &mut cache);
            let warm = m.prefill_from(shared.len(), &b, &mut cache);
            assert_eq!(warm.rows, b.len() - shared.len());
            for i in 0..warm.rows {
                assert_eq!(warm.row(i), cold.row(shared.len() + i), "{prec:?} suffix row {i}");
            }
            assert_eq!(cache.len(), cold_cache.len(), "{prec:?}");
            assert_eq!(cache.k, cold_cache.k, "{prec:?} resumed keys");
            assert_eq!(cache.v, cold_cache.v, "{prec:?} resumed values");
        }
    }

    #[test]
    fn truncate_rolls_back_to_the_prefix_exactly() {
        let m = TinyCausalLm::new(TinyConfig::small(22));
        let tokens = [9u32, 30, 7, 2, 101];
        let mut full = m.new_cache();
        m.prefill(&tokens, &mut full);
        let mut prefix_only = m.new_cache();
        m.prefill(&tokens[..3], &mut prefix_only);
        full.truncate(3);
        assert_eq!(full.len(), 3);
        assert_eq!(full.k, prefix_only.k);
        assert_eq!(full.v, prefix_only.v);
        // Truncating past the fill is a no-op.
        full.truncate(10);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn fully_cached_prompt_resumes_to_nothing() {
        let m = TinyCausalLm::new(TinyConfig::small(23));
        let tokens = [1u32, 2, 3, 4];
        let mut cache = m.new_cache();
        m.prefill(&tokens, &mut cache);
        let lg = m.prefill_from(tokens.len(), &tokens, &mut cache);
        assert_eq!(lg.rows, 0, "nothing left to prefill");
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn empty_prefill_is_a_no_op() {
        let m = TinyCausalLm::new(TinyConfig::small(13));
        let mut cache = m.new_cache();
        let lg = m.prefill(&[], &mut cache);
        assert_eq!((lg.rows, lg.cols), (0, 256));
        assert_eq!(cache.len(), 0);
        assert_eq!(m.full_logits(&[]), Vec::<f32>::new());
    }

    #[test]
    fn position_matters() {
        // RoPE: the same token at different positions yields different
        // logits (a pure bag-of-tokens bug would make these equal).
        let m = TinyCausalLm::new(TinyConfig::small(3));
        let a = m.full_logits(&[7, 7]);
        let b = m.full_logits(&[7, 7, 7]);
        assert_ne!(a, b);
    }

    #[test]
    fn cache_grows_linearly() {
        let m = TinyCausalLm::new(TinyConfig::small(4));
        let mut cache = m.new_cache();
        m.forward_step(1, &mut cache);
        let one = cache.bytes();
        for t in 2..=8 {
            m.forward_step(t, &mut cache);
        }
        assert_eq!(cache.bytes(), one * 8);
        // Per-token bytes: 2 (K,V) × layers × kv_dim × 4.
        assert_eq!(one, 2 * 2 * 32 * 4);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let m = TinyCausalLm::new(TinyConfig::small(5));
        assert_eq!(m.generate_greedy(&[1, 2], 6), m.generate_greedy(&[1, 2], 6));
    }

    #[test]
    fn quantized_models_track_f32_logits() {
        let m = TinyCausalLm::new(TinyConfig::small(6));
        let tokens = [3u32, 14, 15, 9, 2];
        let base = m.full_logits(&tokens);
        for (prec, tol) in [
            (WeightPrecision::Fp16, 0.02f32),
            (WeightPrecision::Int8, 0.25),
            (WeightPrecision::Int4, 1.5),
        ] {
            let q = m.to_precision(prec).full_logits(&tokens);
            let rms: f32 = base.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt()
                / (base.len() as f32).sqrt();
            assert!(rms < tol, "{prec:?} rms {rms}");
        }
    }

    #[test]
    fn scorer_span_matches_pointwise() {
        use crate::scorer::CausalScorer;
        let m = TinyCausalLm::new(TinyConfig::small(8));
        let w: Vec<u32> = (0..12).map(|i| (i * 13 % 256) as u32).collect();
        let span = m.nll_span(&w, 3);
        assert_eq!(span.len(), 9);
        for (i, &v) in span.iter().enumerate() {
            let p = m.nll_at(&w, 3 + i);
            assert!((v - p).abs() < 1e-5, "pos {i}: {v} vs {p}");
        }
    }

    #[test]
    fn untrained_transformer_scores_near_uniform() {
        use crate::scorer::CausalScorer;
        let m = TinyCausalLm::new(TinyConfig::small(9));
        let w: Vec<u32> = (0..40).map(|i| (i * 7 % 256) as u32).collect();
        let mean: f64 = m.nll_span(&w, 1).iter().sum::<f64>() / (w.len() - 1) as f64;
        let uniform = (256f64).ln();
        assert!((mean - uniform).abs() < 1.5, "mean nll {mean} vs ln V {uniform}");
    }

    #[test]
    fn gqa_uses_fewer_kv_bytes_than_mha() {
        let mut cfg = TinyConfig::small(7);
        cfg.kv_heads = cfg.heads; // MHA variant
        let mha = TinyCausalLm::new(cfg);
        let gqa = TinyCausalLm::new(TinyConfig::small(7));
        let mut cm = mha.new_cache();
        let mut cg = gqa.new_cache();
        for t in 0..4 {
            mha.forward_step(t, &mut cm);
            gqa.forward_step(t, &mut cg);
        }
        assert_eq!(cm.bytes(), 2 * cg.bytes());
    }
}
