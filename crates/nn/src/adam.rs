//! Adam optimizer (Kingma & Ba) over `Matrix` parameters.

use edgellm_tensor::Matrix;

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
struct Slot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// An Adam optimizer over a fixed set of parameter slots.
///
/// Callers register each parameter once (getting a slot id) and then call
/// [`Adam::step`] with the parameter and its gradient every iteration.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    slots: Vec<Slot>,
    t: i32,
}

impl Adam {
    /// Standard hyperparameters with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, slots: Vec::new(), t: 0 }
    }

    /// Register a parameter of `n` elements, returning its slot id.
    pub fn register(&mut self, n: usize) -> usize {
        self.slots.push(Slot { m: vec![0.0; n], v: vec![0.0; n] });
        self.slots.len() - 1
    }

    /// Advance the shared timestep. Call once per optimization step,
    /// before updating the slots of that step.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to `param` given `grad` for slot `slot`.
    ///
    /// # Panics
    /// If the slot size does not match or `tick` was never called.
    pub fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert!(self.t > 0, "call tick() before step()");
        let s = &mut self.slots[slot];
        assert_eq!(s.m.len(), param.len(), "slot/parameter size mismatch");
        assert_eq!(param.len(), grad.len());
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        let p = param.as_mut_slice();
        let g = grad.as_slice();
        for i in 0..p.len() {
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * g[i];
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let mhat = s.m[i] / b1t;
            let vhat = s.v[i] / b2t;
            p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Apply one Adam update to a plain `Vec<f32>` parameter (biases).
    pub fn step_vec(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert!(self.t > 0, "call tick() before step()");
        let s = &mut self.slots[slot];
        assert_eq!(s.m.len(), param.len());
        assert_eq!(param.len(), grad.len());
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for i in 0..param.len() {
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * grad[i];
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = s.m[i] / b1t;
            let vhat = s.v[i] / b2t;
            param[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = Σ (x_i − c_i)², gradient 2(x−c).
        let target = [3.0f32, -1.5, 0.25, 8.0];
        let mut x = Matrix::zeros(1, 4);
        let mut opt = Adam::new(0.05);
        let slot = opt.register(4);
        for _ in 0..2000 {
            let grad = Matrix::from_vec(
                1,
                4,
                x.as_slice().iter().zip(target).map(|(xi, c)| 2.0 * (xi - c)).collect(),
            );
            opt.tick();
            opt.step(slot, &mut x, &grad);
        }
        for (xi, c) in x.as_slice().iter().zip(target) {
            assert!((xi - c).abs() < 1e-2, "{xi} vs {c}");
        }
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // Adam's bias correction makes the very first update ≈ lr·sign(g).
        let mut x = Matrix::zeros(1, 1);
        let g = Matrix::from_vec(1, 1, vec![0.3]);
        let mut opt = Adam::new(0.01);
        let slot = opt.register(1);
        opt.tick();
        opt.step(slot, &mut x, &g);
        assert!((x.get(0, 0) + 0.01).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "tick")]
    fn step_without_tick_panics() {
        let mut x = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.01);
        let slot = opt.register(1);
        opt.step(slot, &mut x, &g);
    }

    #[test]
    fn vec_and_matrix_paths_agree() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut b = vec![1.0f32, 2.0, 3.0];
        let g = vec![0.5f32, -0.25, 1.0];
        let gm = Matrix::from_vec(1, 3, g.clone());
        let mut opt = Adam::new(0.02);
        let sa = opt.register(3);
        let sb = opt.register(3);
        opt.tick();
        opt.step(sa, &mut a, &gm);
        opt.step_vec(sb, &mut b, &g);
        for (x, y) in a.as_slice().iter().zip(&b) {
            assert!((x - y).abs() < 1e-7);
        }
    }
}
