//! A linear layer with precision-polymorphic weights.

use edgellm_quant::{QuantizedWeights, WeightPrecision};
use edgellm_tensor::Matrix;

/// `y = x·Wᵀ + b` with weights stored at any of the four paper precisions.
/// Biases stay in f32 at all precisions (as BitsAndBytes does on device).
#[derive(Debug, Clone)]
pub struct Linear {
    /// `(out × in)` weights.
    pub weights: QuantizedWeights,
    /// Optional `out`-long bias.
    pub bias: Option<Vec<f32>>,
}

impl Linear {
    /// Fresh f32 layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Linear {
            weights: QuantizedWeights::Fp32(Matrix::rand_kaiming(out_features, in_features, seed)),
            bias: Some(vec![0.0; out_features]),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// Forward pass: `(batch × in) → (batch × out)`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = self.weights.matmul_nt(x);
        if let Some(b) = &self.bias {
            for r in 0..y.rows {
                edgellm_tensor::ops::add_inplace(y.row_mut(r), b);
            }
        }
        y
    }

    /// Mutable access to f32 weights (training path).
    ///
    /// # Panics
    /// If the layer has been quantized (training quantized weights is not
    /// supported, matching the paper's inference-only quantization).
    pub fn weights_f32_mut(&mut self) -> &mut Matrix {
        match &mut self.weights {
            QuantizedWeights::Fp32(m) => m,
            _ => panic!("layer is quantized; training requires f32 weights"),
        }
    }

    /// Borrow the f32 weights (training path).
    ///
    /// # Panics
    /// If the layer has been quantized.
    pub fn weights_f32(&self) -> &Matrix {
        match &self.weights {
            QuantizedWeights::Fp32(m) => m,
            _ => panic!("layer is quantized"),
        }
    }

    /// A copy of this layer at another precision (real re-quantization of
    /// the dequantized weights).
    pub fn to_precision(&self, prec: WeightPrecision) -> Linear {
        let f32_weights = self.weights.dequantize();
        Linear { weights: QuantizedWeights::quantize(&f32_weights, prec), bias: self.bias.clone() }
    }

    /// Storage bytes of the weights at the current precision.
    pub fn weight_bytes(&self) -> usize {
        self.weights.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut l = Linear::new(4, 3, 1);
        l.bias = Some(vec![1.0, 2.0, 3.0]);
        let x = Matrix::zeros(2, 4);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (2, 3));
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn precision_conversion_preserves_shape_and_roughly_values() {
        let l = Linear::new(32, 16, 2);
        let x = Matrix::rand_kaiming(4, 32, 3);
        let y32 = l.forward(&x);
        for p in [WeightPrecision::Fp16, WeightPrecision::Int8, WeightPrecision::Int4] {
            let lq = l.to_precision(p);
            let yq = lq.forward(&x);
            assert_eq!((yq.rows, yq.cols), (y32.rows, y32.cols));
            let err: f32 =
                y32.as_slice().iter().zip(yq.as_slice()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                    / y32.len() as f32;
            assert!(err < 0.05, "{p:?} mean err {err}");
        }
    }

    #[test]
    #[should_panic(expected = "quantized")]
    fn training_access_requires_f32() {
        let mut l = Linear::new(8, 8, 4).to_precision(WeightPrecision::Int8);
        let _ = l.weights_f32_mut();
    }
}
