//! Post-training quantization of a trained [`MlpLm`] — the BitsAndBytes
//! loading path of the paper, on real weights.

use crate::mlp_lm::MlpLm;
use edgellm_quant::WeightPrecision;
use edgellm_tensor::{f16_to_f32, f32_to_f16, Matrix};

/// Round a matrix through f16 storage (BitsAndBytes keeps embeddings in
/// FP16 even when the linears are INT8/INT4).
pub fn f16_roundtrip(m: &Matrix) -> Matrix {
    Matrix::from_vec(
        m.rows,
        m.cols,
        m.as_slice().iter().map(|&v| f16_to_f32(f32_to_f16(v))).collect(),
    )
}

/// A copy of the model at the requested serving precision:
///
/// * FP32 — untouched;
/// * FP16 — linears *and* embeddings rounded through binary16;
/// * INT8/INT4 — linears quantized through the real codecs, embeddings in
///   FP16 (the BitsAndBytes convention the footprint model also uses).
pub fn to_precision(model: &MlpLm, prec: WeightPrecision) -> MlpLm {
    let emb = match prec {
        WeightPrecision::Fp32 => model.emb.clone(),
        _ => f16_roundtrip(&model.emb),
    };
    MlpLm {
        cfg: model.cfg,
        emb,
        fc1: model.fc1.to_precision(prec),
        fc2: model.fc2.to_precision(prec),
    }
}

/// Serving weight bytes of the model at its current precisions (linears at
/// their stored precision + embeddings at 2 bytes unless FP32).
pub fn weight_bytes(model: &MlpLm, prec: WeightPrecision) -> usize {
    let emb_bytes = model.emb.len() * if prec == WeightPrecision::Fp32 { 4 } else { 2 };
    let q = to_precision(model, prec);
    emb_bytes + q.fc1.weight_bytes() + q.fc2.weight_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp_lm::MlpLmConfig;

    fn trained_model() -> (MlpLm, Vec<u32>) {
        let cfg = MlpLmConfig { vocab: 48, context: 3, d_emb: 12, hidden: 32, seed: 5 };
        let mut m = MlpLm::new(cfg);
        // Structured, learnable stream.
        let stream: Vec<u32> = (0..6000).map(|i| ((i * 5 + i / 7) % 48) as u32).collect();
        m.train(&stream, 500, 32, 3e-3, 11);
        (m, stream)
    }

    #[test]
    fn perplexity_ladder_matches_table3_shape() {
        let (m, stream) = trained_model();
        let ppl = |p: WeightPrecision| to_precision(&m, p).perplexity(&stream);
        let (p32, p16, p8, p4) = (
            ppl(WeightPrecision::Fp32),
            ppl(WeightPrecision::Fp16),
            ppl(WeightPrecision::Int8),
            ppl(WeightPrecision::Int4),
        );
        // Table 3 shape: FP32 ≈ FP16 (paper reports identical to 2 dp),
        // INT8 marginally worse, INT4 clearly worse.
        assert!((p16 - p32).abs() / p32 < 0.02, "fp16 {p16} vs fp32 {p32}");
        assert!(p8 < p4, "int8 {p8} must beat int4 {p4}");
        assert!(p4 > p32, "int4 {p4} must degrade vs fp32 {p32}");
    }

    #[test]
    fn quantized_model_shapes_survive() {
        let (m, _) = trained_model();
        for p in WeightPrecision::ALL {
            let q = to_precision(&m, p);
            assert_eq!(q.cfg, m.cfg);
            assert_eq!(q.fc1.in_features(), m.fc1.in_features());
            assert_eq!(q.fc2.out_features(), m.fc2.out_features());
        }
    }

    #[test]
    fn weight_bytes_shrink_down_the_ladder() {
        let (m, _) = trained_model();
        let sizes: Vec<usize> = WeightPrecision::ALL.iter().map(|&p| weight_bytes(&m, p)).collect();
        for w in sizes.windows(2) {
            assert!(w[0] > w[1], "{sizes:?}");
        }
    }

    #[test]
    fn f16_roundtrip_small_error() {
        let m = Matrix::rand_normal(10, 10, 0.1, 1);
        let r = f16_roundtrip(&m);
        for (a, b) in m.as_slice().iter().zip(r.as_slice()) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-6);
        }
    }
}
