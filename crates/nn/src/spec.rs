//! Speculative decoding: deterministic self-drafting plus batched
//! draft verification over the real KV cache.
//!
//! Decode on edge accelerators is memory-bandwidth-bound (paper §3.2):
//! every autoregressive step re-streams the full weight set to emit one
//! token. Draft-and-verify decoding converts `k` of those
//! bandwidth-bound steps into one compute-amortized batched pass — the
//! same amortization the `m=1..8` GEMV shapes in `bench_kernels`
//! quantify — without changing a single output token.
//!
//! The pieces:
//!
//! * [`PromptLookupDrafter`] — a deterministic n-gram (prompt-lookup)
//!   drafter over the request's own prompt + generated context. No
//!   second model: the draft is the continuation that followed the most
//!   recent earlier occurrence of the current suffix n-gram.
//! * [`verify_step`] — scores the committed next token plus `k` draft
//!   tokens in **one** batched pass (built on the
//!   [`TinyCausalLm::prefill`]/[`TinyCausalLm::prefill_from`] machinery,
//!   which is bitwise-equal to token stepping), accepts the longest
//!   prefix of the draft that matches the model's own greedy argmax,
//!   and rolls every rejected token back out of the cache with
//!   [`KvCache::truncate`].
//! * [`TinyCausalLm::generate_speculative`] — the full decode loop;
//!   its output is **bitwise-identical** to
//!   [`TinyCausalLm::generate_greedy`] at every precision and thread
//!   count, because both argmax over bit-identical logits.
//!
//! The serve layer mirrors the same mechanics at device scale
//! (`core::serve` speculation-aware iterations, block-exact rollback
//! through `edgellm-mem`'s paged allocator).

use crate::transformer::{KvCache, TinyCausalLm};
use edgellm_tensor::sampling::argmax;

/// Default longest suffix n-gram the drafter tries to match.
pub const DEFAULT_MAX_NGRAM: usize = 3;

/// Proposes draft continuations from the request's own context.
pub trait Drafter {
    /// Up to `k` draft tokens continuing `context`. May return fewer
    /// (or none) when the context offers no usable pattern; the decode
    /// loop then degrades to a plain greedy step.
    fn draft(&self, context: &[u32], k: usize) -> Vec<u32>;
}

/// Deterministic n-gram / prompt-lookup drafter: find the longest
/// suffix of the context (up to `max_ngram` tokens) that occurred
/// earlier, and propose the tokens that followed its most recent
/// earlier occurrence. Pure function of the context — no RNG, no
/// second model — so speculative decode stays replayable.
#[derive(Debug, Clone, Copy)]
pub struct PromptLookupDrafter {
    /// Longest suffix n-gram to match (tried longest-first).
    pub max_ngram: usize,
    /// Shortest suffix n-gram worth matching.
    pub min_ngram: usize,
}

impl Default for PromptLookupDrafter {
    fn default() -> Self {
        PromptLookupDrafter { max_ngram: DEFAULT_MAX_NGRAM, min_ngram: 1 }
    }
}

impl Drafter for PromptLookupDrafter {
    fn draft(&self, context: &[u32], k: usize) -> Vec<u32> {
        if k == 0 || context.len() < 2 {
            return Vec::new();
        }
        let hi = self.max_ngram.min(context.len() - 1).max(1);
        let lo = self.min_ngram.clamp(1, hi);
        for n in (lo..=hi).rev() {
            let suffix = &context[context.len() - n..];
            // Most recent earlier occurrence whose continuation exists.
            let last_start = context.len() - n; // exclusive: the suffix itself
            for start in (0..last_start).rev() {
                if &context[start..start + n] == suffix {
                    let cont = start + n;
                    let end = (cont + k).min(context.len());
                    if cont < end {
                        return context[cont..end].to_vec();
                    }
                }
            }
        }
        Vec::new()
    }
}

/// Counters from one speculative decode (or one verify iteration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Draft tokens proposed.
    pub drafted: u64,
    /// Draft tokens accepted by the verifier.
    pub accepted: u64,
    /// Draft tokens rejected and rolled back out of the KV cache.
    pub rolled_back: u64,
    /// Batched verify passes run (each replaces `1 + accepted`
    /// sequential decode steps).
    pub verify_calls: u64,
}

impl SpecStats {
    /// Measured per-token acceptance rate α (1.0 when nothing was
    /// drafted — an empty draft costs nothing).
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            1.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Fold another stats record into this one.
    pub fn merge(&mut self, other: &SpecStats) {
        self.drafted += other.drafted;
        self.accepted += other.accepted;
        self.rolled_back += other.rolled_back;
        self.verify_calls += other.verify_calls;
    }
}

/// Result of one batched verify pass.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Draft tokens accepted (`0..=draft.len()`): the longest prefix of
    /// the draft matching the model's own greedy continuation.
    pub accepted: usize,
    /// Next-token logits after the last *consumed* token — bit-identical
    /// to what sequential [`TinyCausalLm::forward_step`] calls over the
    /// committed token and the accepted draft tokens would return.
    pub logits: Vec<f32>,
}

/// Score `pending` (= the committed next token followed by the draft
/// tokens) in one batched pass, accept the longest greedy-matching
/// draft prefix, and roll the rejected tail back out of the cache.
///
/// On entry the cache holds every previously consumed token; on exit it
/// holds exactly those plus `1 + accepted` more. The forward pass is
/// [`TinyCausalLm::prefill`] — bitwise-equal to token stepping by the
/// fixed per-element accumulation order — and the rollback is
/// [`KvCache::truncate`], so the post-call cache is bit-identical to
/// never having speculated.
///
/// # Panics
/// When `pending` is empty (there is always a committed token to score).
pub fn verify_step(m: &TinyCausalLm, cache: &mut KvCache, pending: &[u32]) -> VerifyOutcome {
    assert!(!pending.is_empty(), "verify_step needs the committed token");
    let base = cache.len();
    let rows = m.prefill(pending, cache);
    // Row `i` holds the logits after consuming pending[..=i]; the draft
    // token pending[i+1] is accepted iff it equals the model's argmax.
    let mut accepted = 0;
    while accepted + 1 < pending.len() {
        let expected = argmax(rows.row(accepted)) as u32;
        if pending[accepted + 1] != expected {
            break;
        }
        accepted += 1;
    }
    // Reject the tail: block-exact rollback of the speculated KV.
    cache.truncate(base + 1 + accepted);
    VerifyOutcome { accepted, logits: rows.row(accepted).to_vec() }
}

impl TinyCausalLm {
    /// Greedy-decode `n` tokens after a prompt using draft-and-verify
    /// speculation with draft length `k`. The token stream is
    /// **bitwise-identical** to [`TinyCausalLm::generate_greedy`] —
    /// speculation only changes how many forward passes produce it.
    ///
    /// Returns the tokens and the speculation counters ([`SpecStats`]),
    /// from which the measured acceptance rate α follows.
    pub fn generate_speculative(
        &self,
        prompt: &[u32],
        n: usize,
        drafter: &dyn Drafter,
        k: usize,
    ) -> (Vec<u32>, SpecStats) {
        let mut cache = self.new_cache();
        let mut logits = if prompt.is_empty() {
            vec![0.0]
        } else {
            let lg = self.prefill(prompt, &mut cache);
            lg.row(lg.rows - 1).to_vec()
        };
        let mut out = Vec::with_capacity(n);
        let mut context = prompt.to_vec();
        let mut stats = SpecStats::default();
        while out.len() < n {
            // The next token is already determined by the logits in
            // hand — commit it for free, then speculate past it.
            let t = argmax(&logits) as u32;
            out.push(t);
            context.push(t);
            if out.len() == n {
                // Nothing left to speculate toward; the committed token
                // is never consumed (exactly like generate_greedy's
                // final loop iteration, which discards its logits).
                break;
            }
            let want = k.min(n - out.len());
            let draft = drafter.draft(&context, want);
            stats.drafted += draft.len() as u64;
            let mut pending = Vec::with_capacity(1 + draft.len());
            pending.push(t);
            pending.extend_from_slice(&draft);
            let vo = verify_step(self, &mut cache, &pending);
            stats.verify_calls += 1;
            stats.accepted += vo.accepted as u64;
            stats.rolled_back += (draft.len() - vo.accepted) as u64;
            out.extend_from_slice(&draft[..vo.accepted]);
            context.extend_from_slice(&draft[..vo.accepted]);
            logits = vo.logits;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::TinyConfig;
    use edgellm_quant::WeightPrecision;

    #[test]
    fn prompt_lookup_finds_the_most_recent_continuation() {
        let d = PromptLookupDrafter::default();
        // Suffix [7, 8] occurred earlier; continuation was 9, 1.
        let ctx = [1u32, 7, 8, 9, 1, 4, 7, 8];
        assert_eq!(d.draft(&ctx, 2), vec![9, 1]);
        // Longest match wins over a shorter, more recent one: the full
        // trigram [5,6,9] matched at position 0 (continuation 2) beats
        // the closer bigram [6,9] at position 4 (continuation 5).
        let ctx = [5u32, 6, 9, 2, 6, 9, 5, 6, 9];
        assert_eq!(d.draft(&ctx, 1), vec![2]);
        // No repeat anywhere → empty draft.
        assert_eq!(d.draft(&[1, 2, 3, 4], 4), Vec::<u32>::new());
        // Degenerate contexts never panic.
        assert_eq!(d.draft(&[], 4), Vec::<u32>::new());
        assert_eq!(d.draft(&[3], 4), Vec::<u32>::new());
        assert_eq!(d.draft(&[3, 3], 0), Vec::<u32>::new());
    }

    #[test]
    fn repetitive_context_drafts_the_loop() {
        let d = PromptLookupDrafter::default();
        let ctx = [10u32, 11, 12, 10, 11, 12, 10, 11, 12];
        // Suffix [10,11,12] matched at position 3; continuation 10,11,12.
        assert_eq!(d.draft(&ctx, 3), vec![10, 11, 12]);
    }

    #[test]
    fn verify_accepts_exactly_the_greedy_prefix() {
        let m = TinyCausalLm::new(TinyConfig::small(31));
        let prompt = [3u32, 99, 41, 7];
        let greedy = m.generate_greedy(&prompt, 5);
        // Draft the true greedy continuation: everything is accepted.
        let mut cache = m.new_cache();
        let lg = m.prefill(&prompt, &mut cache);
        let first = argmax(lg.row(lg.rows - 1)) as u32;
        assert_eq!(first, greedy[0]);
        let mut pending = vec![first];
        pending.extend_from_slice(&greedy[1..4]);
        let vo = verify_step(&m, &mut cache, &pending);
        assert_eq!(vo.accepted, 3, "a perfect draft is fully accepted");
        assert_eq!(cache.len(), prompt.len() + 4);
        // Corrupt the second draft token: only the first survives and
        // the cache rolls back block-exactly.
        let mut cache2 = m.new_cache();
        m.prefill(&prompt, &mut cache2);
        let mut bad = pending.clone();
        bad[2] = bad[2].wrapping_add(1) % 256;
        let vo2 = verify_step(&m, &mut cache2, &bad);
        assert_eq!(vo2.accepted, 1);
        assert_eq!(cache2.len(), prompt.len() + 2);
        // The surviving logits are bit-identical either way.
        let mut step_cache = m.new_cache();
        m.prefill(&prompt, &mut step_cache);
        m.forward_step(pending[0], &mut step_cache);
        let stepped = m.forward_step(pending[1], &mut step_cache);
        assert_eq!(vo2.logits, stepped);
    }

    #[test]
    fn speculative_equals_greedy_at_all_precisions() {
        let base = TinyCausalLm::new(TinyConfig::small(32));
        // A repetitive prompt gives the drafter real matches.
        let prompt = [5u32, 8, 13, 5, 8, 13, 5, 8];
        for prec in [
            None,
            Some(WeightPrecision::Fp16),
            Some(WeightPrecision::Int8),
            Some(WeightPrecision::Int4),
        ] {
            let m = match prec {
                None => base.clone(),
                Some(p) => base.to_precision(p),
            };
            let plain = m.generate_greedy(&prompt, 24);
            for k in [1usize, 2, 4, 8] {
                let (spec, stats) =
                    m.generate_speculative(&prompt, 24, &PromptLookupDrafter::default(), k);
                assert_eq!(spec, plain, "{prec:?} k={k}");
                assert_eq!(stats.drafted, stats.accepted + stats.rolled_back, "{prec:?} k={k}");
            }
        }
    }

    #[test]
    fn speculation_saves_forward_passes_on_repetitive_text() {
        let m = TinyCausalLm::new(TinyConfig::small(33));
        // Untrained models loop quickly; find a prompt whose greedy
        // continuation repeats so prompt-lookup drafting actually hits.
        let prompt = [9u32, 9, 9, 9];
        let n = 32;
        let (out, stats) = m.generate_speculative(&prompt, n, &PromptLookupDrafter::default(), 4);
        assert_eq!(out.len(), n);
        assert_eq!(out, m.generate_greedy(&prompt, n));
        assert!(stats.accepted > 0, "looping generation must accept drafts: {stats:?} out={out:?}");
        // Each verify call emits 1 + accepted tokens; with any
        // acceptance the pass count drops below n.
        assert!(stats.verify_calls < n as u64, "{stats:?}");
    }

    #[test]
    fn zero_and_tiny_requests_degrade_gracefully() {
        let m = TinyCausalLm::new(TinyConfig::small(34));
        let d = PromptLookupDrafter::default();
        assert_eq!(m.generate_speculative(&[1, 2], 0, &d, 4).0, Vec::<u32>::new());
        assert_eq!(m.generate_speculative(&[1, 2], 1, &d, 4).0, m.generate_greedy(&[1, 2], 1));
        assert_eq!(m.generate_speculative(&[], 3, &d, 4).0, m.generate_greedy(&[], 3));
    }
}
