//! # edgellm-nn — a real, trainable neural language-model substrate
//!
//! The *executable* counterpart to the device simulator: everything in this
//! crate actually computes. It exists so that the paper's accuracy results
//! (Table 3: perplexity vs. quantization) are **measured**, not modeled:
//!
//! * [`mlp_lm`] — a Bengio-style n-gram MLP language model with manual
//!   backpropagation and [`adam`] training, fast enough to train on a laptop
//!   CPU in seconds. Four scaled capacities stand in for the paper's four
//!   LLMs (see DESIGN.md §1 for the substitution argument).
//! * [`transformer`] — a decoder-only transformer with a **real KV cache**
//!   (GQA-aware, RoPE), used to validate decode mechanics (incremental
//!   decode ≡ full forward) and to benchmark quantized kernels on a
//!   transformer-shaped workload.
//! * [`quantize`] — re-quantization of trained models to FP16/INT8/INT4
//!   through the real codecs in `edgellm-quant`, following the BitsAndBytes
//!   convention (embeddings stay FP16).
//! * [`scorer`] — the [`CausalScorer`] trait consumed by the perplexity
//!   evaluator in `edgellm-core` (sliding windows of 1024, stride 512 —
//!   the paper's exact protocol).
//! * [`spec`] — speculative draft-and-verify decoding: a deterministic
//!   prompt-lookup drafter plus a batched [`verify_step`] whose output
//!   is bitwise-identical to plain greedy decode at every precision.

pub mod adam;
pub mod linear;
pub mod loss;
pub mod mlp_lm;
pub mod quantize;
pub mod scorer;
pub mod spec;
pub mod transformer;

pub use adam::Adam;
pub use linear::Linear;
pub use mlp_lm::{MlpLm, MlpLmConfig, TrainReport};
pub use scorer::CausalScorer;
pub use spec::{verify_step, Drafter, PromptLookupDrafter, SpecStats, VerifyOutcome};
pub use transformer::{KvCache, TinyCausalLm, TinyConfig};

pub use edgellm_quant::WeightPrecision;
pub use edgellm_tensor::Matrix;
