//! Cross-entropy loss over logits, with its backward pass.

use edgellm_tensor::ops::log_softmax;
use edgellm_tensor::Matrix;

/// Mean negative log-likelihood of `targets` under row-wise softmax of
/// `logits`, plus the gradient w.r.t. the logits (`(softmax − onehot)/B`).
pub fn cross_entropy(logits: &Matrix, targets: &[u32]) -> (f64, Matrix) {
    assert_eq!(logits.rows, targets.len());
    let b = logits.rows;
    let mut grad = Matrix::zeros(logits.rows, logits.cols);
    let mut nll = 0.0f64;
    for (r, &target) in targets.iter().enumerate() {
        let ls = log_softmax(logits.row(r));
        let t = target as usize;
        nll -= ls[t] as f64;
        let g = grad.row_mut(r);
        for (i, &l) in ls.iter().enumerate() {
            g[i] = l.exp() / b as f32;
        }
        g[t] -= 1.0 / b as f32;
    }
    (nll / b as f64, grad)
}

/// NLL only (evaluation path, no gradient allocation).
pub fn nll_only(logits: &Matrix, targets: &[u32]) -> f64 {
    assert_eq!(logits.rows, targets.len());
    let mut nll = 0.0f64;
    for r in 0..logits.rows {
        let ls = log_softmax(logits.row(r));
        nll -= ls[targets[r] as usize] as f64;
    }
    nll / logits.rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Matrix::zeros(2, 8);
        let (loss, _) = cross_entropy(&logits, &[3, 5]);
        assert!((loss - (8f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 4);
        logits.set(0, 2, 20.0);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::rand_kaiming(3, 10, 1);
        let (_, grad) = cross_entropy(&logits, &[0, 5, 9]);
        for r in 0..3 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::rand_kaiming(2, 6, 2);
        let targets = [1u32, 4];
        let (_, grad) = cross_entropy(&logits, &targets);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..6 {
                let mut lp = logits.clone();
                lp.set(r, c, lp.get(r, c) + h);
                let mut lm = logits.clone();
                lm.set(r, c, lm.get(r, c) - h);
                let fp = nll_only(&lp, &targets) * 2.0; // sum over batch
                let fm = nll_only(&lm, &targets) * 2.0;
                let fd = ((fp - fm) / (2.0 * h as f64)) / 2.0; // mean-loss grad
                assert!(
                    (grad.get(r, c) as f64 - fd).abs() < 1e-3,
                    "r{r} c{c}: {} vs {}",
                    grad.get(r, c),
                    fd
                );
            }
        }
    }

    #[test]
    fn nll_only_agrees_with_cross_entropy() {
        let logits = Matrix::rand_kaiming(4, 12, 3);
        let targets = [0u32, 3, 7, 11];
        let (a, _) = cross_entropy(&logits, &targets);
        assert!((a - nll_only(&logits, &targets)).abs() < 1e-9);
    }
}
