//! The scoring interface consumed by the perplexity evaluator.

/// A causal language model that can score next-token probabilities.
///
/// `edgellm-core`'s sliding-window perplexity evaluator (1024-token windows,
/// stride 512 — the paper's §2 protocol) is generic over this trait.
pub trait CausalScorer {
    /// Vocabulary size.
    fn vocab_size(&self) -> usize;

    /// Negative log-likelihood (nats) of `window[pos]` given
    /// `window[..pos]`.
    fn nll_at(&self, window: &[u32], pos: usize) -> f64;

    /// NLLs of every position in `start..window.len()` — override for a
    /// batched implementation.
    fn nll_span(&self, window: &[u32], start: usize) -> Vec<f64> {
        (start..window.len()).map(|p| self.nll_at(window, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform scorer: every token costs ln(V).
    struct Uniform(usize);
    impl CausalScorer for Uniform {
        fn vocab_size(&self) -> usize {
            self.0
        }
        fn nll_at(&self, _window: &[u32], _pos: usize) -> f64 {
            (self.0 as f64).ln()
        }
    }

    #[test]
    fn default_span_maps_nll_at() {
        let s = Uniform(16);
        let w = [1u32, 2, 3, 4, 5];
        let span = s.nll_span(&w, 2);
        assert_eq!(span.len(), 3);
        for v in span {
            assert!((v - 16f64.ln()).abs() < 1e-12);
        }
    }
}
