//! End-to-end determinism: a full transformer decode + batched prefill
//! must be bit-identical across thread counts, at every weight precision.

use edgellm_nn::transformer::{TinyCausalLm, TinyConfig};
use edgellm_quant::WeightPrecision;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn forward_step_is_bitwise_stable_across_thread_counts() {
    let base = TinyCausalLm::new(TinyConfig::small(42));
    let tokens = [7u32, 130, 2, 88, 41, 200, 9, 63];
    for prec in [
        None,
        Some(WeightPrecision::Fp16),
        Some(WeightPrecision::Int8),
        Some(WeightPrecision::Int4),
    ] {
        let m = match prec {
            None => base.clone(),
            Some(p) => base.to_precision(p),
        };
        let run = || {
            let mut cache = m.new_cache();
            tokens.iter().map(|&t| m.forward_step(t, &mut cache)).collect::<Vec<_>>()
        };
        let reference = rayon::with_num_threads(1, run);
        for t in THREAD_COUNTS {
            let got = rayon::with_num_threads(t, run);
            for (step, (a, b)) in got.iter().zip(&reference).enumerate() {
                let same = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "{prec:?} step {step} differs at {t} threads");
            }
        }
    }
}

#[test]
fn prefill_is_bitwise_stable_across_thread_counts() {
    let m = TinyCausalLm::new(TinyConfig::small(43));
    let tokens: Vec<u32> = (0..24).map(|i| (i * 31 % 256) as u32).collect();
    let run = || {
        let mut cache = m.new_cache();
        m.prefill(&tokens, &mut cache)
    };
    let reference = rayon::with_num_threads(1, run);
    for t in THREAD_COUNTS {
        let got = rayon::with_num_threads(t, run);
        let same = got
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "prefill logits differ at {t} threads");
    }
}
