//! Pure verifiers over a governed run's records.
//!
//! These functions are the single implementation behind the
//! `edgellm-check` governor oracles *and* the experiment assertions, so
//! a claim like "the budget was never violated" means the same thing in
//! both places. They take only plain data (audits, the iteration
//! trace) and return `Err(description)` on the first violation.

use edgellm_core::IterationTrace;

use crate::governor::GovernorAudit;

/// Relative tolerance for energy comparisons, matching the checking
/// harness's energy-integral oracle.
pub const ENERGY_RTOL: f64 = 1e-9;

/// Min-dwell/hysteresis oracle: consecutive applied mode changes must be
/// at least `min_dwell_s` apart (the anti-flapping contract).
pub fn verify_min_dwell(audit: &GovernorAudit) -> Result<(), String> {
    for pair in audit.decisions.windows(2) {
        let gap = pair[1].t_s - pair[0].t_s;
        if gap + 1e-9 < audit.min_dwell_s {
            return Err(format!(
                "changes at t={:.6} and t={:.6} are {:.6}s apart; min dwell {}s",
                pair[0].t_s, pair[1].t_s, gap, audit.min_dwell_s
            ));
        }
    }
    for d in &audit.decisions {
        if d.from == d.to {
            return Err(format!("no-op decision recorded at t={:.6}", d.t_s));
        }
        if d.to >= audit.rung_names.len() {
            return Err(format!("decision at t={:.6} targets rung {} off the ladder", d.t_s, d.to));
        }
    }
    Ok(())
}

/// Energy-budget oracle: between engagement and every subsequent
/// iteration boundary, the deficit against the cap line
/// (`E(t) − E₀ − cap·(t − t₀)`) must stay within the burst reserve plus
/// the control loop's unavoidable reaction slack:
///
/// * one iteration's above-cap excess (the governor only acts at
///   boundaries, so a hot iteration lands before it can react), and
/// * one dwell window at the ladder ceiling's peak draw (an applied
///   step-up blocks the corrective step-down for `min_dwell_s`).
///
/// Anything beyond that means the policy held a hot rung while the
/// reserve was spent — a genuine cap violation.
pub fn verify_budget(audit: &GovernorAudit, trace: &[IterationTrace]) -> Result<(), String> {
    let Some(b) = &audit.budget else {
        return Ok(());
    };
    let dwell_slack_j = audit.min_dwell_s * (b.ceiling_peak_w - b.cap_w).max(0.0);
    let mut cum_e = 0.0f64;
    let mut max_excess_j = 0.0f64;
    for it in trace {
        let e = it.power_w * it.dt_s;
        cum_e += e;
        if it.t_s < b.engaged_t_s {
            continue;
        }
        max_excess_j = max_excess_j.max(e - b.cap_w * it.dt_s);
        let deficit = (cum_e - b.engaged_energy_j) - b.cap_w * (it.t_s - b.engaged_t_s);
        let bound = b.burst_j + max_excess_j + dwell_slack_j;
        let tol = ENERGY_RTOL * (1.0 + cum_e.abs() + bound.abs());
        if deficit > bound + tol {
            return Err(format!(
                "deficit {:.6} J at t={:.6} exceeds burst reserve {:.6} J \
                 (+ {:.6} J iteration excess + {:.6} J dwell slack)",
                deficit, it.t_s, b.burst_j, max_excess_j, dwell_slack_j
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ModeChange;
    use crate::policy::BudgetAudit;
    use edgellm_core::IterPhase;

    fn audit(decisions: Vec<ModeChange>, budget: Option<BudgetAudit>) -> GovernorAudit {
        GovernorAudit {
            policy: "test".to_string(),
            min_dwell_s: 1.0,
            rung_names: vec!["low".into(), "high".into()],
            initial: 1,
            decisions,
            budget,
        }
    }

    fn change(t_s: f64, from: usize, to: usize) -> ModeChange {
        ModeChange { t_s, from, to, mode: "x".to_string() }
    }

    fn iter(t_s: f64, dt_s: f64, power_w: f64) -> IterationTrace {
        IterationTrace {
            t_s,
            dt_s,
            phase: IterPhase::Decode,
            decoding: 1,
            prefilling: 0,
            kv_blocks_used: 1,
            kv_blocks_total: 4,
            power_w,
            tokens: 1,
        }
    }

    #[test]
    fn dwell_verifier_catches_flapping() {
        let ok = audit(vec![change(0.0, 1, 0), change(1.0, 0, 1)], None);
        assert!(verify_min_dwell(&ok).is_ok());
        let flap = audit(vec![change(0.0, 1, 0), change(0.3, 0, 1)], None);
        assert!(verify_min_dwell(&flap).is_err());
        let noop = audit(vec![change(0.0, 1, 1)], None);
        assert!(verify_min_dwell(&noop).is_err());
    }

    #[test]
    fn budget_verifier_allows_quantization_but_not_overruns() {
        let b = BudgetAudit {
            cap_w: 10.0,
            burst_j: 5.0,
            engaged_t_s: 0.0,
            engaged_energy_j: 0.0,
            ceiling_peak_w: 30.0,
        };
        // One iteration 20 J over the line: reserve (5) is blown but a
        // single iteration's excess is unavoidable quantization.
        let one_hot = [iter(1.0, 1.0, 30.0)];
        assert!(verify_budget(&audit(vec![], Some(b)), &one_hot).is_ok());
        // Sustained 20 J/s over the line: deficit 100 J after 5 s, far
        // past reserve + one-iteration excess + dwell slack (5+20+20).
        let sustained: Vec<_> = (1..=5).map(|k| iter(k as f64, 1.0, 30.0)).collect();
        assert!(verify_budget(&audit(vec![], Some(b)), &sustained).is_err());
        // No budget policy: vacuously fine.
        assert!(verify_budget(&audit(vec![], None), &sustained).is_ok());
    }
}
