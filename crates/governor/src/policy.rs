//! The governor's policy catalog.
//!
//! A [`GovernorPolicy`] maps one telemetry snapshot to a desired ladder
//! rung; the [`Governor`](crate::Governor) wrapper owns actuation
//! (min-dwell enforcement, decision logging, mode lookup). Policies are
//! plain deterministic state machines over `f64` arithmetic — no clocks,
//! no randomness — so governed runs replay bit-identically.
//!
//! Shipped policies:
//!
//! * [`Static`] — never moves; the baseline every experiment compares
//!   against.
//! * [`HystereticLadder`] — step up on SLO risk, step down on idle, with
//!   distinct up/down thresholds (hysteresis) so the governor does not
//!   flap around a load level.
//! * [`EnergyBudget`] — track the energy deficit against a J/s cap and
//!   pick the highest rung whose *peak* power fits the instantaneous
//!   allowance, degrading to the floor when the burst reserve is spent.
//! * [`ThermalHeadroom`] — integrate the same RC junction model the
//!   fleet's `ThermalGuard` uses and shed rungs *before* the trip
//!   limit, stepping back up once headroom returns.

use edgellm_core::serve::GovernorObs;
use edgellm_power::ThermalModel;

use crate::cost::ModeLadder;

/// Audit record of an [`EnergyBudget`] engagement, consumed by the
/// budget verifier and the `edgellm-check` oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetAudit {
    /// Sustained power cap (J/s).
    pub cap_w: f64,
    /// Burst reserve: transient energy the policy may spend above the
    /// cap line before it must degrade (J).
    pub burst_j: f64,
    /// Instant the budget meter engaged (first observation, s).
    pub engaged_t_s: f64,
    /// Energy already integrated at engagement (J).
    pub engaged_energy_j: f64,
    /// Peak power of the ladder's top rung (W) — the worst sustained
    /// draw a dwell window can lock in. Filled by the governor wrapper
    /// (the policy does not own the ladder).
    pub ceiling_peak_w: f64,
}

/// One policy: a deterministic map from telemetry to a desired rung.
///
/// `decide` receives the current rung and the ladder and returns the
/// rung the policy wants (`None` = hold). The wrapper clamps, applies
/// min-dwell, and records the change.
pub trait GovernorPolicy: std::fmt::Debug + Send {
    /// Stable policy name used in audits and reports.
    fn name(&self) -> &'static str;

    /// Observe one iteration boundary and pick a desired rung.
    fn decide(
        &mut self,
        obs: &GovernorObs<'_>,
        ladder: &ModeLadder,
        current: usize,
    ) -> Option<usize>;

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn GovernorPolicy>;

    /// Budget engagement record, when this policy meters energy.
    fn budget(&self) -> Option<BudgetAudit> {
        None
    }
}

impl Clone for Box<dyn GovernorPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The do-nothing baseline: hold whatever rung the run started on.
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl GovernorPolicy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&mut self, _: &GovernorObs<'_>, _: &ModeLadder, _: usize) -> Option<usize> {
        None
    }

    fn clone_box(&self) -> Box<dyn GovernorPolicy> {
        Box::new(*self)
    }
}

/// Latency targets the hysteretic ladder defends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Time-to-first-token target (s).
    pub ttft_s: f64,
    /// Time-between-tokens target (s).
    pub tbt_s: f64,
}

/// Step up on SLO risk, step down on idle — with hysteresis.
///
/// Risk (any of these) steps one rung up:
/// * the oldest first-token wait has burned `up_frac` of the TTFT target;
/// * the last decode iteration exceeded the TBT target;
/// * queue depth reached `hi_depth`.
///
/// Comfort (all of these) steps one rung down:
/// * nothing queued or live (the device idles);
/// * or queue depth ≤ 1 with the oldest wait under `down_frac` of the
///   TTFT target *and* the last decode iteration under `down_frac` of
///   the TBT target.
///
/// `down_frac < up_frac` opens the hysteresis band: between the two
/// thresholds the policy holds, so a load level near one threshold
/// cannot make it flap (the wrapper's min-dwell bounds the rate
/// besides).
#[derive(Debug, Clone, Copy)]
pub struct HystereticLadder {
    /// The latency targets.
    pub slo: SloSpec,
    /// Queue depth that always counts as SLO risk.
    pub hi_depth: usize,
    /// Fraction of a target that triggers a step up.
    pub up_frac: f64,
    /// Fraction of a target below which stepping down is safe.
    pub down_frac: f64,
}

impl HystereticLadder {
    /// A ladder defending the given targets with the default band
    /// (up at 50% of target, down under 25%, depth 6).
    pub fn new(slo: SloSpec) -> Self {
        HystereticLadder { slo, hi_depth: 6, up_frac: 0.5, down_frac: 0.25 }
    }
}

impl GovernorPolicy for HystereticLadder {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn decide(
        &mut self,
        obs: &GovernorObs<'_>,
        ladder: &ModeLadder,
        current: usize,
    ) -> Option<usize> {
        let tbt = obs.last_decode_dt_s();
        let risk = obs.oldest_wait_s > self.up_frac * self.slo.ttft_s
            || tbt.is_some_and(|dt| dt > self.slo.tbt_s)
            || obs.queue_depth >= self.hi_depth;
        if risk {
            return (current + 1 < ladder.len()).then_some(current + 1);
        }
        let comfortable = obs.queue_depth == 0
            || (obs.queue_depth <= 1
                && obs.oldest_wait_s < self.down_frac * self.slo.ttft_s
                && tbt.is_none_or(|dt| dt < self.down_frac * self.slo.tbt_s));
        if comfortable {
            return current.checked_sub(1);
        }
        None
    }

    fn clone_box(&self) -> Box<dyn GovernorPolicy> {
        Box::new(*self)
    }
}

/// Horizon over which the energy-budget policy plans to repay
/// accumulated credit/deficit (s). Purely a smoothing constant: shorter
/// horizons react harder to the deficit signal.
const BUDGET_HORIZON_S: f64 = 5.0;

/// Stay under a sustained J/s cap, degrading gracefully.
///
/// The policy meters the *deficit* `D(t) = (E(t) − E₀) − cap·(t − t₀)`
/// from its first observation. `D ≤ 0` means the run is under its
/// budget line (credit); `D > 0` means it is borrowing from the burst
/// reserve. Each boundary it computes the instantaneous allowance
/// `cap + max(0, −D)/horizon` and picks the *highest* rung whose peak
/// power fits (via the shared cost predicate) — so credit earned while
/// idle can be spent sprinting, but a run at the cap line can never
/// select a rung able to out-draw it. When `D` exceeds the burst
/// reserve the policy pins the floor until the deficit drains.
#[derive(Debug, Clone, Copy)]
pub struct EnergyBudget {
    /// Sustained power cap (J/s).
    pub cap_w: f64,
    /// Burst reserve (J) tolerated above the cap line before pinning
    /// the floor.
    pub burst_j: f64,
    engaged: Option<(f64, f64)>,
}

impl EnergyBudget {
    /// A budget enforcer for the given cap, with a reserve worth two
    /// seconds at the cap line.
    pub fn new(cap_w: f64) -> Self {
        EnergyBudget { cap_w, burst_j: 2.0 * cap_w, engaged: None }
    }

    /// Override the burst reserve.
    pub fn burst(mut self, burst_j: f64) -> Self {
        self.burst_j = burst_j;
        self
    }

    /// Current deficit against the cap line, given total run energy and
    /// the clock. Negative = credit.
    pub fn deficit_j(&self, now_s: f64, energy_j: f64) -> f64 {
        match self.engaged {
            Some((t0, e0)) => (energy_j - e0) - self.cap_w * (now_s - t0),
            None => 0.0,
        }
    }
}

impl GovernorPolicy for EnergyBudget {
    fn name(&self) -> &'static str {
        "budget"
    }

    fn decide(
        &mut self,
        obs: &GovernorObs<'_>,
        ladder: &ModeLadder,
        current: usize,
    ) -> Option<usize> {
        if self.engaged.is_none() {
            self.engaged = Some((obs.now_s, obs.energy_j));
        }
        let deficit = self.deficit_j(obs.now_s, obs.energy_j);
        let want = if deficit > self.burst_j {
            0 // reserve spent: pin the floor until the deficit drains
        } else {
            let allowance = self.cap_w + (-deficit).max(0.0) / BUDGET_HORIZON_S;
            ladder.highest_under_power(allowance).unwrap_or(0)
        };
        (want != current).then_some(want)
    }

    fn clone_box(&self) -> Box<dyn GovernorPolicy> {
        Box::new(*self)
    }

    fn budget(&self) -> Option<BudgetAudit> {
        self.engaged.map(|(t0, e0)| BudgetAudit {
            cap_w: self.cap_w,
            burst_j: self.burst_j,
            engaged_t_s: t0,
            engaged_energy_j: e0,
            ceiling_peak_w: 0.0,
        })
    }
}

/// Throttle *before* the thermal trip, not after.
///
/// Integrates the same RC junction model the fleet's `ThermalGuard`
/// uses (falling back to its own integrator when the driver supplies no
/// junction estimate) and sheds one rung whenever the junction is
/// within `margin_c` of the trip limit; once it has cooled an extra
/// `margin_c` of slack, it climbs back. A guarded device governed by
/// this policy never reaches the limit under loads the floor rung can
/// sustain — the guard's cooldown machinery stays idle.
#[derive(Debug, Clone, Copy)]
pub struct ThermalHeadroom {
    /// The enclosure model (limit, RC constants).
    pub model: ThermalModel,
    /// Headroom kept below the trip limit (°C).
    pub margin_c: f64,
    temp_c: f64,
}

impl ThermalHeadroom {
    /// Defend `margin_c` of headroom under the given enclosure model.
    pub fn new(model: ThermalModel, margin_c: f64) -> Self {
        ThermalHeadroom { model, margin_c, temp_c: model.t_ambient_c }
    }

    /// The integrator's current junction estimate (°C).
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }
}

impl GovernorPolicy for ThermalHeadroom {
    fn name(&self) -> &'static str {
        "thermal"
    }

    fn decide(
        &mut self,
        obs: &GovernorObs<'_>,
        ladder: &ModeLadder,
        current: usize,
    ) -> Option<usize> {
        // Keep the private integrator in sync regardless of the driver:
        // same RC update as fleet::ThermalGuard::absorb.
        for it in obs.iters {
            let dtemp = (it.power_w * self.model.r_c_per_w
                - (self.temp_c - self.model.t_ambient_c))
                / self.model.tau_s
                * it.dt_s;
            self.temp_c += dtemp;
        }
        let temp = obs.temp_c.unwrap_or(self.temp_c);
        if temp >= self.model.t_limit_c - self.margin_c {
            return current.checked_sub(1);
        }
        if temp < self.model.t_limit_c - 2.0 * self.margin_c && current + 1 < ladder.len() {
            return Some(current + 1);
        }
        None
    }

    fn clone_box(&self) -> Box<dyn GovernorPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_core::IterationTrace;
    use edgellm_hw::DeviceSpec;
    use edgellm_models::{Llm, Precision};

    fn ladder() -> ModeLadder {
        ModeLadder::stock(&DeviceSpec::orin_agx_64gb(), Llm::Llama31_8b, Precision::Fp16)
    }

    fn obs(
        now_s: f64,
        queue_depth: usize,
        oldest_wait_s: f64,
        energy_j: f64,
    ) -> GovernorObs<'static> {
        GovernorObs {
            now_s,
            queue_depth,
            live: queue_depth.min(1),
            backlog_tokens: queue_depth as u64 * 32,
            kv_occupancy: 0.1,
            energy_j,
            oldest_wait_s,
            mode: "MaxN",
            temp_c: None,
            iters: &[],
        }
    }

    #[test]
    fn hysteretic_band_holds_between_thresholds() {
        let l = ladder();
        let mut p = HystereticLadder::new(SloSpec { ttft_s: 10.0, tbt_s: 0.5 });
        // Risk: oldest wait beyond half the TTFT target.
        assert_eq!(p.decide(&obs(1.0, 3, 6.0, 0.0), &l, 4), Some(5));
        // Comfort: empty queue.
        assert_eq!(p.decide(&obs(2.0, 0, 0.0, 0.0), &l, 4), Some(3));
        // In between: hold.
        assert_eq!(p.decide(&obs(3.0, 3, 3.0, 0.0), &l, 4), None);
        // Clamped at the ceiling.
        assert_eq!(p.decide(&obs(4.0, 9, 9.0, 0.0), &l, l.len() - 1), None);
    }

    #[test]
    fn budget_pins_floor_once_reserve_is_spent() {
        let l = ladder();
        let cap = l.rung(0).cost.peak_power_w * 1.3;
        let mut p = EnergyBudget::new(cap).burst(10.0);
        // Engagement at t=0, E=0; the first decision has zero deficit and
        // wants the highest rung whose peak fits the bare cap.
        let sustainable = l.highest_under_power(cap).expect("cap above floor peak");
        let first = p.decide(&obs(0.0, 2, 0.0, 0.0), &l, 3);
        assert_eq!(first, (sustainable != 3).then_some(sustainable));
        // Burn far past the reserve: floor demanded.
        assert_eq!(p.decide(&obs(1.0, 2, 0.0, cap + 50.0), &l, sustainable.max(1)), Some(0));
        // Long idle accrues credit; the allowance lets it climb again.
        let e_idle = cap + 50.1;
        let d = p.deficit_j(100.0, e_idle);
        assert!(d < 0.0, "idle stretch repays the deficit");
        let climbed = p.decide(&obs(100.0, 2, 0.0, e_idle), &l, 0);
        assert!(climbed.is_some_and(|r| r > 0), "credit funds a sprint");
    }

    #[test]
    fn thermal_policy_sheds_before_the_limit() {
        let model = ThermalModel::orin_agx_passive();
        let l = ladder();
        let mut p = ThermalHeadroom::new(model, 8.0);
        // One long hot entry drives the integrator near steady state.
        let hot = IterationTrace {
            t_s: 4000.0,
            dt_s: 4000.0,
            phase: edgellm_core::IterPhase::Decode,
            decoding: 1,
            prefilling: 0,
            kv_blocks_used: 0,
            kv_blocks_total: 1,
            power_w: 60.0,
            tokens: 1,
        };
        let mut o = obs(4000.0, 2, 0.0, 0.0);
        o.iters = std::slice::from_ref(&hot);
        let decision = p.decide(&o, &l, 5);
        assert!(p.temp_c() > model.t_limit_c - 8.0, "integrator ran hot");
        assert_eq!(decision, Some(4), "sheds one rung before the trip");
        // Cool ambient observation steps back up.
        let mut cool = ThermalHeadroom::new(model, 8.0);
        assert_eq!(cool.decide(&obs(0.0, 2, 0.0, 0.0), &l, 5), Some(6));
    }

    #[test]
    fn static_policy_never_moves() {
        let l = ladder();
        let mut p = Static;
        assert_eq!(p.decide(&obs(0.0, 50, 100.0, 0.0), &l, 0), None);
    }
}
