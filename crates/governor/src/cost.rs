//! The shared mode cost model: one scoring path for offline search and
//! online control.
//!
//! Offline ([`crate::search`]) and online ([`crate::policy`]) mode
//! selection must agree on what a power mode *costs*, or the governor
//! would chase operating points the planner rejects (and vice versa).
//! This module is that single source of truth:
//!
//! * [`Constraints`] / [`feasible`] — the feasibility predicate (latency
//!   and power caps) applied identically to grid-search candidates and
//!   ladder rungs;
//! * [`min_energy_index`] — the winner rule (minimum energy among
//!   feasible), shared verbatim;
//! * [`ModeCost`] / [`mode_cost`] — the per-mode operating-point summary
//!   (busy/idle/peak power, decode throughput, energy per token)
//!   evaluated at the same representative point the fleet router uses
//!   for its estimates, so routing and governing rank devices and modes
//!   consistently.

use edgellm_hw::{DeviceSpec, PowerMode, PowerModeRegistry};
use edgellm_models::{Llm, Precision};
use edgellm_perf::PerfModel;
use edgellm_power::{LoadProfile, RailModel};

/// The representative decode operating point every estimate in this
/// module is evaluated at: a 4-deep decode batch over the paper's
/// 96-token context (the same point `edgellm-fleet` uses for routing
/// estimates).
pub const REPRESENTATIVE_POINT: (u64, u64) = (4, 96);

/// Feasibility constraints on a mode. `f64::INFINITY` disables a bound.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Maximum latency (s) — batch latency offline, step proxy online.
    pub max_latency_s: f64,
    /// Maximum power (W).
    pub max_power_w: f64,
}

impl Constraints {
    /// No constraints: everything is feasible.
    pub fn none() -> Self {
        Constraints { max_latency_s: f64::INFINITY, max_power_w: f64::INFINITY }
    }

    /// A pure power cap.
    pub fn power_cap(max_power_w: f64) -> Self {
        Constraints { max_latency_s: f64::INFINITY, max_power_w }
    }
}

/// The feasibility predicate shared by offline search and online
/// control: a mode is admissible iff it meets both bounds.
pub fn feasible(latency_s: f64, power_w: f64, c: &Constraints) -> bool {
    latency_s <= c.max_latency_s && power_w <= c.max_power_w
}

/// The winner rule shared by offline search and online control: the
/// index of the minimum-energy entry among those marked feasible.
/// `None` when nothing is feasible.
pub fn min_energy_index<I>(scored: I) -> Option<usize>
where
    I: IntoIterator<Item = (bool, f64)>,
{
    scored
        .into_iter()
        .enumerate()
        .filter(|(_, (ok, _))| *ok)
        .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite energy"))
        .map(|(i, _)| i)
}

/// Static operating-point summary of one power mode on one
/// device/model/precision triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCost {
    /// Module power while decoding at the representative point (W).
    pub busy_power_w: f64,
    /// Module power while idle (W).
    pub idle_power_w: f64,
    /// Absolute worst-case module power: every rail fully utilized (W).
    pub peak_power_w: f64,
    /// Decode throughput at the representative point (tok/s).
    pub decode_tok_s: f64,
    /// Decode energy per token at the representative point (J).
    pub energy_per_token_j: f64,
}

/// Evaluate [`ModeCost`] for one mode. The arithmetic (and its order)
/// deliberately matches the fleet router's estimate computation so both
/// layers score a mode bit-identically.
pub fn mode_cost(
    device: &DeviceSpec,
    llm: Llm,
    precision: Precision,
    mode: &PowerMode,
) -> ModeCost {
    let clocks = mode.clocks;
    let perf = PerfModel::new(device.clone(), llm, precision, clocks);
    let maxn = PerfModel::new(device.clone(), llm, precision, device.max_clocks());
    let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
    let rails = RailModel::orin_agx(device.clone());
    let idle_power_w = rails.total_w(&clocks, &LoadProfile::idle());
    let (bs, ctx) = REPRESENTATIVE_POINT;
    let decode_tok_s = bs as f64 / perf.decode_step_time(bs, ctx);
    let u = perf.decode_utilization(bs, ctx);
    let busy_power_w = rails.total_w(
        &clocks,
        &LoadProfile { gpu_util: u.gpu, cpu_util: u.cpu, bw_util: u.mem_bw, bw_ratio },
    );
    let peak_power_w = rails
        .total_w(&clocks, &LoadProfile { gpu_util: 1.0, cpu_util: 1.0, bw_util: 1.0, bw_ratio });
    ModeCost {
        busy_power_w,
        idle_power_w,
        peak_power_w,
        decode_tok_s,
        energy_per_token_j: busy_power_w / decode_tok_s,
    }
}

/// One rung of a [`ModeLadder`]: a mode and its cost summary.
#[derive(Debug, Clone)]
pub struct Rung {
    /// The power mode.
    pub mode: PowerMode,
    /// Its cost summary.
    pub cost: ModeCost,
}

/// The governor's ordered menu of operating points: a device's modes
/// sorted ascending by busy power, so "step up" always means more
/// performance and more watts. Index 0 is the floor (cheapest), the
/// last index the ceiling (fastest).
#[derive(Debug, Clone)]
pub struct ModeLadder {
    rungs: Vec<Rung>,
}

impl ModeLadder {
    /// Build a ladder from an explicit mode list.
    pub fn new(device: &DeviceSpec, llm: Llm, precision: Precision, modes: &[PowerMode]) -> Self {
        let mut rungs: Vec<Rung> = modes
            .iter()
            .map(|m| Rung { mode: m.clone(), cost: mode_cost(device, llm, precision, m) })
            .collect();
        // Stable sort keeps registration order among equal-power rungs,
        // so the ladder is a pure function of the mode list.
        rungs.sort_by(|a, b| {
            a.cost.busy_power_w.partial_cmp(&b.cost.busy_power_w).expect("finite power")
        });
        ModeLadder { rungs }
    }

    /// Build a ladder from the device's stock mode set (the paper's
    /// Table 2, rescaled off-reference).
    pub fn stock(device: &DeviceSpec, llm: Llm, precision: Precision) -> Self {
        let reg = PowerModeRegistry::stock_for(device.clone());
        let modes: Vec<PowerMode> = reg.iter().cloned().collect();
        Self::new(device, llm, precision, &modes)
    }

    /// All rungs, floor first.
    pub fn rungs(&self) -> &[Rung] {
        &self.rungs
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether the ladder has no rungs.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung at `idx`.
    pub fn rung(&self, idx: usize) -> &Rung {
        &self.rungs[idx]
    }

    /// Locate a mode on the ladder: exact name match first, otherwise
    /// the rung whose busy power is closest to the mode's own cost
    /// (lowest index on ties) — so a custom mode still lands on a
    /// sensible starting rung.
    pub fn position_of(
        &self,
        device: &DeviceSpec,
        llm: Llm,
        precision: Precision,
        mode: &PowerMode,
    ) -> usize {
        if let Some(i) = self.rungs.iter().position(|r| r.mode.name == mode.name) {
            return i;
        }
        let target = mode_cost(device, llm, precision, mode).busy_power_w;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, r) in self.rungs.iter().enumerate() {
            let d = (r.cost.busy_power_w - target).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The highest rung whose *peak* power satisfies `allowed_w`
    /// (checked through the shared [`feasible`] predicate), or `None`
    /// when even the floor exceeds it. This is the budget governor's
    /// selection rule: peak power bounds what the rung can draw under
    /// any load, so a feasible rung can never outrun the cap.
    pub fn highest_under_power(&self, allowed_w: f64) -> Option<usize> {
        let c = Constraints::power_cap(allowed_w);
        self.rungs
            .iter()
            .enumerate()
            .rev()
            .find(|(_, r)| feasible(0.0, r.cost.peak_power_w, &c))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agx_ladder() -> (DeviceSpec, ModeLadder) {
        let dev = DeviceSpec::orin_agx_64gb();
        let ladder = ModeLadder::stock(&dev, Llm::Llama31_8b, Precision::Fp16);
        (dev, ladder)
    }

    #[test]
    fn ladder_sorted_by_busy_power_with_maxn_on_top() {
        let (_, ladder) = agx_ladder();
        assert_eq!(ladder.len(), 9, "Table 2 has nine modes");
        for pair in ladder.rungs().windows(2) {
            assert!(pair[0].cost.busy_power_w <= pair[1].cost.busy_power_w);
        }
        assert_eq!(ladder.rung(ladder.len() - 1).mode.name, "MaxN");
    }

    #[test]
    fn cost_ordering_is_physical() {
        let (_, ladder) = agx_ladder();
        let floor = &ladder.rung(0).cost;
        let top = &ladder.rung(ladder.len() - 1).cost;
        assert!(top.decode_tok_s > floor.decode_tok_s, "faster clocks decode faster");
        assert!(top.busy_power_w > floor.busy_power_w);
        for r in ladder.rungs() {
            assert!(r.cost.idle_power_w < r.cost.busy_power_w);
            assert!(r.cost.busy_power_w <= r.cost.peak_power_w + 1e-12);
            assert!(r.cost.energy_per_token_j > 0.0);
        }
    }

    #[test]
    fn position_of_finds_names_and_customs() {
        let (dev, ladder) = agx_ladder();
        let maxn = PowerMode::maxn_for(&dev);
        assert_eq!(
            ladder.position_of(&dev, Llm::Llama31_8b, Precision::Fp16, &maxn),
            ladder.len() - 1
        );
        // A custom mode pinned to max clocks lands on the top rung too.
        let c = dev.max_clocks();
        let custom = PowerMode::custom("mystery", c.gpu_mhz, c.cpu_ghz, c.cores_online, c.mem_mhz);
        assert_eq!(
            ladder.position_of(&dev, Llm::Llama31_8b, Precision::Fp16, &custom),
            ladder.len() - 1
        );
    }

    #[test]
    fn highest_under_power_respects_the_shared_predicate() {
        let (_, ladder) = agx_ladder();
        assert_eq!(ladder.highest_under_power(f64::INFINITY), Some(ladder.len() - 1));
        assert_eq!(ladder.highest_under_power(0.0), None);
        let mid = ladder.rung(ladder.len() / 2).cost.peak_power_w;
        let idx = ladder.highest_under_power(mid).expect("mid cap admits lower rungs");
        assert!(ladder.rung(idx).cost.peak_power_w <= mid);
        if idx + 1 < ladder.len() {
            assert!(ladder.rung(idx + 1).cost.peak_power_w > mid);
        }
    }

    #[test]
    fn min_energy_index_picks_feasible_minimum() {
        let scored = [(true, 3.0), (false, 1.0), (true, 2.0)];
        assert_eq!(min_energy_index(scored), Some(2));
        assert_eq!(min_energy_index([(false, 1.0)]), None);
    }
}
