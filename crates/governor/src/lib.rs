//! # edgellm-governor — online SLO-aware power-mode governance
//!
//! The paper's central result is a Pareto frontier: Jetson power modes
//! trade latency against energy (§3.4, Table 2). The rest of the
//! workspace exploits that frontier *offline* — pick one static mode per
//! workload. This crate rides it *online*: a deterministic feedback
//! controller observes per-iteration serving telemetry (queue depth,
//! TTFT/TBT risk, KV pressure, integrated energy, thermal state) and
//! retunes the device's power mode while the run is in flight, through
//! the [`GovernorHook`](edgellm_core::serve::GovernorHook) boundary
//! callback `edgellm-core` exposes.
//!
//! The pieces:
//!
//! * [`cost`] — the shared mode cost model: feasibility predicate,
//!   min-energy winner rule, per-mode operating-point summaries, and the
//!   [`ModeLadder`] (modes sorted by busy power). Offline search and
//!   online control both score modes here, so they can never disagree.
//! * [`policy`] — the [`GovernorPolicy`] catalog: [`Static`] baseline,
//!   [`HystereticLadder`] (up on SLO risk, down on idle),
//!   [`EnergyBudget`] (deficit metering against a J/s cap),
//!   [`ThermalHeadroom`] (RC junction integrator, throttles *before*
//!   the trip).
//! * [`governor`] — the [`Governor`] wrapper binding a policy to a
//!   ladder: clamping, min-dwell enforcement, decision logging, and the
//!   [`GovernorAudit`] record.
//! * [`verify`] — pure verifiers (min-dwell respected; energy budget
//!   never exceeded) shared by the `edgellm-check` oracles and the
//!   experiment assertions.
//! * [`search`] — the offline DVFS grid search (moved from
//!   `edgellm_core::pmsearch`), now scored through [`cost`].
//! * [`trace`] — Perfetto export: decision instants plus an
//!   `active_power_mode` counter track.
//!
//! ```
//! use edgellm_core::serve::ServeSim;
//! use edgellm_core::{PoissonArrivals, RunConfig, ServeConfig};
//! use edgellm_governor::{Governor, HystereticLadder, SloSpec};
//! use edgellm_hw::DeviceSpec;
//! use edgellm_models::{Llm, Precision};
//!
//! let dev = DeviceSpec::orin_agx_64gb();
//! let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
//! let reqs = PoissonArrivals::paper_shape(1.0).generate(8, 7);
//! let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &cfg, &reqs).unwrap();
//! let policy = HystereticLadder::new(SloSpec { ttft_s: 20.0, tbt_s: 1.0 });
//! let mut gov = Governor::new(Box::new(policy), &dev, cfg.llm, cfg.precision, &cfg.power_mode);
//! while let Some(t) = sim.next_event_s() {
//!     sim.step_governed(t, &mut gov).unwrap();
//! }
//! let audit = gov.audit();
//! edgellm_governor::verify::verify_min_dwell(&audit).unwrap();
//! ```

pub mod cost;
pub mod governor;
pub mod policy;
pub mod search;
pub mod trace;
pub mod verify;

pub use cost::{mode_cost, Constraints, ModeCost, ModeLadder, Rung};
pub use governor::{Governor, GovernorAudit, ModeChange, DEFAULT_MIN_DWELL_S};
pub use policy::{
    BudgetAudit, EnergyBudget, GovernorPolicy, HystereticLadder, SloSpec, Static, ThermalHeadroom,
};
pub use search::{search_power_modes, Candidate, SearchConstraints, SearchResult};
pub use verify::{verify_budget, verify_min_dwell};
