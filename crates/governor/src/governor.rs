//! The actuation wrapper around a policy: dwell enforcement, decision
//! logging, and the audit record the invariant oracles consume.

use edgellm_core::serve::{GovernorHook, GovernorObs};
use edgellm_hw::{DeviceSpec, PowerMode};
use edgellm_models::{Llm, Precision};

use crate::cost::ModeLadder;
use crate::policy::{BudgetAudit, GovernorPolicy};

/// One applied mode change.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeChange {
    /// Simulation instant of the change (an iteration boundary, s).
    pub t_s: f64,
    /// Ladder rung before.
    pub from: usize,
    /// Ladder rung after.
    pub to: usize,
    /// Name of the mode stepped to.
    pub mode: String,
}

/// Post-run record of everything a [`Governor`] did, consumed by the
/// `edgellm-check` oracles and the experiment reports. Deterministic:
/// byte-identical across thread counts for the same run.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorAudit {
    /// Policy name.
    pub policy: String,
    /// Dwell floor between changes (s).
    pub min_dwell_s: f64,
    /// Rung names, floor first (the ladder order).
    pub rung_names: Vec<String>,
    /// Rung the run started on.
    pub initial: usize,
    /// Every applied change, in time order.
    pub decisions: Vec<ModeChange>,
    /// Budget engagement, when the policy meters energy.
    pub budget: Option<BudgetAudit>,
}

impl GovernorAudit {
    /// The rung active at time `t_s` (decisions apply at their instant).
    pub fn rung_at(&self, t_s: f64) -> usize {
        self.decisions.iter().rev().find(|d| d.t_s <= t_s).map(|d| d.to).unwrap_or(self.initial)
    }
}

/// A policy bound to a ladder: the object a simulation drives.
///
/// The wrapper owns everything the policies should not re-implement —
/// clamping the desired rung, refusing changes inside the dwell window,
/// logging applied decisions — so every policy automatically satisfies
/// the min-dwell oracle.
#[derive(Debug, Clone)]
pub struct Governor {
    policy: Box<dyn GovernorPolicy>,
    ladder: ModeLadder,
    current: usize,
    min_dwell_s: f64,
    last_change_s: f64,
    decisions: Vec<ModeChange>,
}

/// Default dwell floor between mode changes (s).
pub const DEFAULT_MIN_DWELL_S: f64 = 0.5;

impl Governor {
    /// Bind `policy` to the device's stock ladder, starting from the
    /// rung `initial_mode` maps to.
    pub fn new(
        policy: Box<dyn GovernorPolicy>,
        device: &DeviceSpec,
        llm: Llm,
        precision: Precision,
        initial_mode: &PowerMode,
    ) -> Self {
        let ladder = ModeLadder::stock(device, llm, precision);
        let current = ladder.position_of(device, llm, precision, initial_mode);
        Governor {
            policy,
            ladder,
            current,
            min_dwell_s: DEFAULT_MIN_DWELL_S,
            last_change_s: f64::NEG_INFINITY,
            decisions: Vec::new(),
        }
    }

    /// Override the dwell floor.
    pub fn min_dwell(mut self, min_dwell_s: f64) -> Self {
        self.min_dwell_s = min_dwell_s;
        self
    }

    /// The ladder this governor steps on.
    pub fn ladder(&self) -> &ModeLadder {
        &self.ladder
    }

    /// The rung currently active.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Applied changes so far (grows during the run; the fleet
    /// coordinator polls this to refresh routing estimates).
    pub fn decisions(&self) -> &[ModeChange] {
        &self.decisions
    }

    /// Re-base on an externally-applied mode change (a scripted power
    /// flip): the governor's notion of the current rung follows the
    /// actual hardware mode, without logging a decision or opening a
    /// dwell window — the next decision may correct immediately.
    pub fn resync(
        &mut self,
        device: &DeviceSpec,
        llm: Llm,
        precision: Precision,
        mode: &PowerMode,
    ) {
        self.current = self.ladder.position_of(device, llm, precision, mode);
    }

    /// Snapshot the run's governance record.
    pub fn audit(&self) -> GovernorAudit {
        let mut budget = self.policy.budget();
        if let Some(b) = &mut budget {
            // The policy does not own the ladder; fill in the worst
            // sustained draw a dwell window can lock in.
            b.ceiling_peak_w =
                self.ladder.rungs().iter().map(|r| r.cost.peak_power_w).fold(0.0f64, f64::max);
        }
        GovernorAudit {
            policy: self.policy.name().to_string(),
            min_dwell_s: self.min_dwell_s,
            rung_names: self.ladder.rungs().iter().map(|r| r.mode.name.clone()).collect(),
            initial: self.decisions.first().map(|d| d.from).unwrap_or(self.current),
            decisions: self.decisions.clone(),
            budget,
        }
    }
}

impl GovernorHook for Governor {
    fn on_iteration(&mut self, obs: &GovernorObs<'_>) -> Option<PowerMode> {
        let want = self.policy.decide(obs, &self.ladder, self.current)?;
        let want = want.min(self.ladder.len().saturating_sub(1));
        if want == self.current || obs.now_s - self.last_change_s < self.min_dwell_s {
            return None;
        }
        self.decisions.push(ModeChange {
            t_s: obs.now_s,
            from: self.current,
            to: want,
            mode: self.ladder.rung(want).mode.name.clone(),
        });
        self.current = want;
        self.last_change_s = obs.now_s;
        Some(self.ladder.rung(want).mode.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HystereticLadder, SloSpec};
    use edgellm_core::serve::GovernorObs;

    fn governor() -> Governor {
        let dev = DeviceSpec::orin_agx_64gb();
        let maxn = PowerMode::maxn_for(&dev);
        Governor::new(
            Box::new(HystereticLadder::new(SloSpec { ttft_s: 10.0, tbt_s: 0.5 })),
            &dev,
            Llm::Llama31_8b,
            Precision::Fp16,
            &maxn,
        )
        .min_dwell(1.0)
    }

    fn idle_obs(now_s: f64) -> GovernorObs<'static> {
        GovernorObs {
            now_s,
            queue_depth: 0,
            live: 0,
            backlog_tokens: 0,
            kv_occupancy: 0.0,
            energy_j: 0.0,
            oldest_wait_s: 0.0,
            mode: "MaxN",
            temp_c: None,
            iters: &[],
        }
    }

    #[test]
    fn dwell_window_suppresses_flapping() {
        let mut g = governor();
        let top = g.current();
        assert!(g.on_iteration(&idle_obs(0.0)).is_some(), "idle steps down immediately");
        assert_eq!(g.current(), top - 1);
        // Inside the dwell window the same comfort signal is ignored.
        assert!(g.on_iteration(&idle_obs(0.5)).is_none());
        assert_eq!(g.current(), top - 1);
        // Past the window it steps again.
        assert!(g.on_iteration(&idle_obs(1.0)).is_some());
        assert_eq!(g.current(), top - 2);
        let audit = g.audit();
        assert_eq!(audit.decisions.len(), 2);
        assert_eq!(audit.initial, top);
        assert_eq!(audit.rung_at(-1.0), top);
        assert_eq!(audit.rung_at(0.2), top - 1);
        assert_eq!(audit.rung_at(2.0), top - 2);
        crate::verify::verify_min_dwell(&audit).expect("wrapper enforces its own dwell");
    }
}
