//! Perfetto export of a governed run: decision instants plus an
//! active-power-mode counter track, composable with the serve adapter's
//! per-process timeline.

use edgellm_core::serve::record_serve_run;
use edgellm_core::ServeSim;
use edgellm_trace::{Arg, Trace};

use crate::governor::{Governor, GovernorAudit};

/// Track (thread) id the governor's decision instants land on, beside
/// the serve adapter's scheduler track (tid 1).
pub const TID_GOVERNOR: u32 = 2;

/// Record a governed run's decision timeline onto process `pid`:
///
/// * one `mode_change` instant per applied decision (on the `governor`
///   track), annotated with the policy, the rungs, and the mode name;
/// * an `active_power_mode` counter track sampling the rung index at
///   every change (stepped line from `start_s` to `end_s`), so the mode
///   trajectory is visible next to the power-rail counters in Perfetto.
pub fn record_governor(out: &mut Trace, pid: u32, audit: &GovernorAudit, start_s: f64, end_s: f64) {
    out.set_thread_name(pid, TID_GOVERNOR, "governor");
    out.counter(pid, "active_power_mode", start_s * 1e6, &[("rung", audit.initial as f64)]);
    for d in &audit.decisions {
        out.instant(
            pid,
            TID_GOVERNOR,
            "mode_change",
            "governor",
            d.t_s * 1e6,
            vec![
                ("policy".to_string(), Arg::Str(audit.policy.clone())),
                ("from".to_string(), Arg::U64(d.from as u64)),
                ("to".to_string(), Arg::U64(d.to as u64)),
                ("mode".to_string(), Arg::Str(d.mode.clone())),
            ],
        );
        out.counter(pid, "active_power_mode", d.t_s * 1e6, &[("rung", d.to as f64)]);
    }
    if end_s > start_s {
        let last = audit.decisions.last().map(|d| d.to).unwrap_or(audit.initial);
        out.counter(pid, "active_power_mode", end_s * 1e6, &[("rung", last as f64)]);
    }
}

/// Record a still-live governed serve run — the scheduler/KV/rail
/// timeline via the serve adapter plus the governor tracks — as one
/// process. The one-stop shop for experiments that drive
/// [`ServeSim::step_governed`] directly (and therefore never reach the
/// trace sink's automatic `finish()` recording).
pub fn record_governed_run(out: &mut Trace, sim: &ServeSim, governor: &Governor) -> u32 {
    let pid = out.next_pid();
    out.set_process_name(pid, format!("{} [governed]", sim.label()));
    record_serve_run(
        out,
        pid,
        sim.label(),
        sim.trace(),
        sim.rail_trace(),
        sim.cache_occupancy_log(),
        sim.preemption_events(),
    );
    let start_s = sim.trace().first().map(|it| it.t_s - it.dt_s).unwrap_or(0.0);
    record_governor(out, pid, &governor.audit(), start_s, sim.now());
    pid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ModeChange;
    use edgellm_trace::validate_chrome_trace;

    #[test]
    fn governor_tracks_validate_as_chrome_json() {
        let audit = GovernorAudit {
            policy: "ladder".to_string(),
            min_dwell_s: 0.5,
            rung_names: vec!["A".into(), "MaxN".into()],
            initial: 1,
            decisions: vec![ModeChange { t_s: 2.0, from: 1, to: 0, mode: "A".into() }],
            budget: None,
        };
        let mut out = Trace::new();
        out.set_process_name(1, "test");
        record_governor(&mut out, 1, &audit, 0.0, 5.0);
        assert_eq!(out.len(), 4, "one instant + three counter samples");
        let json = out.to_chrome_json();
        validate_chrome_trace(&json).expect("valid trace-event JSON");
    }
}
