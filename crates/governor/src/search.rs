//! Custom power-mode search — the paper's future-work suggestion
//! ("leverage [these empirical results] to optimize LLM inferencing on the
//! edge") made operational: grid-search the DVFS space for the
//! minimum-energy mode satisfying latency and power constraints.
//!
//! Moved here from `edgellm_core::pmsearch` so offline search and the
//! online governor score modes through the same [`crate::cost`]
//! primitives — [`cost::feasible`](crate::cost::feasible) is the
//! admission predicate and
//! [`cost::min_energy_index`](crate::cost::min_energy_index) the winner
//! rule, for both. The grid, the evaluation, and the outputs are
//! unchanged by the move.

use edgellm_core::{BatchMetrics, Engine, RunConfig, RunError};
use edgellm_hw::PowerMode;

use crate::cost::{feasible, min_energy_index, Constraints};

/// Constraints for the search — the shared cost-model constraints under
/// their historical name.
pub type SearchConstraints = Constraints;

/// A candidate evaluated during the search.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The power mode.
    pub mode: PowerMode,
    /// Its metrics under the workload.
    pub metrics: BatchMetrics,
    /// Whether it satisfies the constraints.
    pub feasible: bool,
}

/// The search result: every candidate plus the winner index (if any).
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// All evaluated candidates (grid order).
    pub candidates: Vec<Candidate>,
    /// Index of the minimum-energy feasible candidate.
    pub best: Option<usize>,
}

impl SearchResult {
    /// The winning candidate, if any mode was feasible.
    pub fn best_candidate(&self) -> Option<&Candidate> {
        self.best.map(|i| &self.candidates[i])
    }
}

/// Grid-search DVFS settings for the minimum-energy feasible mode.
///
/// The grid spans `gpu_steps × cpu_steps × mem_steps` evenly-spaced clock
/// settings between ~40% and 100% of each domain's maximum (core count is
/// left at maximum — the paper shows it is performance-neutral, §3.4).
/// Out-of-memory workloads propagate as errors from the first evaluation.
pub fn search_power_modes(
    engine: &Engine,
    cfg: &RunConfig,
    constraints: SearchConstraints,
    steps_per_domain: u32,
) -> Result<SearchResult, RunError> {
    assert!(steps_per_domain >= 1, "need at least one step per domain");
    let dev = engine.device();
    let level = |i: u32, max: f64| -> f64 {
        if steps_per_domain == 1 {
            max
        } else {
            max * (0.4 + 0.6 * i as f64 / (steps_per_domain - 1) as f64)
        }
    };
    let mut candidates = Vec::new();
    for gi in 0..steps_per_domain {
        for ci in 0..steps_per_domain {
            for mi in 0..steps_per_domain {
                let mode = PowerMode::custom(
                    format!("search-g{gi}-c{ci}-m{mi}"),
                    level(gi, dev.gpu.max_freq_mhz as f64) as u32,
                    level(ci, dev.cpu.max_freq_ghz),
                    dev.cpu.cores,
                    level(mi, dev.memory.max_freq_mhz as f64) as u32,
                );
                let metrics = engine.run_batch(&cfg.clone().power_mode(mode.clone()))?;
                let ok = feasible(metrics.latency_s, metrics.median_power_w, &constraints);
                candidates.push(Candidate { mode, metrics, feasible: ok });
            }
        }
    }
    let best = min_energy_index(candidates.iter().map(|c| (c.feasible, c.metrics.energy_j)));
    Ok(SearchResult { candidates, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_models::{Llm, Precision};

    fn setup() -> (Engine, RunConfig) {
        (Engine::orin_agx_64gb(), RunConfig::new(Llm::Llama31_8b, Precision::Fp16))
    }

    #[test]
    fn unconstrained_search_finds_a_mode() {
        let (engine, cfg) = setup();
        let r = search_power_modes(
            &engine,
            &cfg,
            SearchConstraints { max_latency_s: f64::INFINITY, max_power_w: f64::INFINITY },
            3,
        )
        .unwrap();
        assert_eq!(r.candidates.len(), 27);
        let best = r.best_candidate().expect("everything is feasible");
        // The winner's energy is the grid minimum.
        for c in &r.candidates {
            assert!(best.metrics.energy_j <= c.metrics.energy_j + 1e-9);
        }
    }

    #[test]
    fn tight_power_cap_excludes_maxn() {
        let (engine, cfg) = setup();
        let maxn = engine.run_batch(&cfg).unwrap();
        let r = search_power_modes(
            &engine,
            &cfg,
            SearchConstraints {
                max_latency_s: f64::INFINITY,
                max_power_w: maxn.median_power_w * 0.7,
            },
            3,
        )
        .unwrap();
        let best = r.best_candidate().expect("throttled modes satisfy the cap");
        assert!(best.metrics.median_power_w <= maxn.median_power_w * 0.7);
        assert!(best.mode.clocks.gpu_mhz < engine.device().gpu.max_freq_mhz);
    }

    #[test]
    fn impossible_constraints_yield_no_winner() {
        let (engine, cfg) = setup();
        let r = search_power_modes(
            &engine,
            &cfg,
            SearchConstraints { max_latency_s: 0.001, max_power_w: 1.0 },
            2,
        )
        .unwrap();
        assert!(r.best.is_none());
        assert!(r.candidates.iter().all(|c| !c.feasible));
    }

    #[test]
    fn latency_slo_trades_energy() {
        let (engine, cfg) = setup();
        let loose = search_power_modes(
            &engine,
            &cfg,
            SearchConstraints { max_latency_s: 60.0, max_power_w: f64::INFINITY },
            3,
        )
        .unwrap();
        let tight = search_power_modes(
            &engine,
            &cfg,
            SearchConstraints { max_latency_s: 11.0, max_power_w: f64::INFINITY },
            3,
        )
        .unwrap();
        let (el, et) = (
            loose.best_candidate().unwrap().metrics.energy_j,
            tight.best_candidate().unwrap().metrics.energy_j,
        );
        assert!(el <= et + 1e-9, "looser SLO can only lower min energy: {el} vs {et}");
    }
}
