//! Seeded synthetic text generation.
//!
//! Produces text with natural-language-like statistics: a Zipfian unigram
//! distribution over a synthetic vocabulary plus first-order Markov
//! structure (word-affinity chains), organized into sentences, paragraphs
//! and (for the LongBench profile) multi-section documents. The Markov
//! structure is what makes the corpora *learnable*: the trainable LMs in
//! `edgellm-nn` reach perplexities far below the unigram baseline, giving
//! Table 3's quantization deltas something real to degrade.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which dataset profile to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusKind {
    /// Encyclopedic medium-length paragraphs with occasional headings,
    /// mirroring WikiText2.
    WikiText2Like,
    /// Long multi-section documents (thousands of words), mirroring
    /// LongBench's long-context tasks.
    LongBenchLike,
}

impl CorpusKind {
    /// Display name used in experiment reports (matches the paper).
    pub fn label(&self) -> &'static str {
        match self {
            CorpusKind::WikiText2Like => "WikiText2",
            CorpusKind::LongBenchLike => "LongBench",
        }
    }
}

/// A generated corpus: raw text plus its profile.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The profile this corpus imitates.
    pub kind: CorpusKind,
    /// The generated text. Paragraphs are separated by blank lines.
    pub text: String,
}

/// Deterministic synthetic vocabulary: pronounceable CV-syllable words.
/// Word `i` is built from the digits of `i` in base-`(C·V)`; short indices
/// (frequent ranks) get short words, echoing natural length/frequency
/// correlation.
pub fn word(i: usize) -> String {
    const CONS: &[u8] = b"bcdfgklmnprstvz";
    const VOWS: &[u8] = b"aeiou";
    let base = CONS.len() * VOWS.len();
    let mut out = String::new();
    let mut n = i;
    loop {
        let d = n % base;
        out.push(CONS[d / VOWS.len()] as char);
        out.push(VOWS[d % VOWS.len()] as char);
        n /= base;
        if n == 0 {
            break;
        }
        n -= 1; // bijective numeration: no leading-zero collisions
    }
    out
}

/// The corpus generator. Holds the vocabulary-level distributions; each
/// `generate` call is independently seeded.
#[derive(Debug, Clone)]
pub struct Generator {
    vocab_size: usize,
    zipf: Zipf,
    /// Probability of following the Markov affinity chain instead of
    /// drawing an independent Zipf word.
    chain_prob: f64,
    /// Successors per word in the affinity chain.
    fanout: usize,
}

impl Generator {
    /// A generator with WikiText2-scale vocabulary statistics.
    pub fn new(vocab_size: usize) -> Self {
        Generator { vocab_size, zipf: Zipf::new(vocab_size, 1.05), chain_prob: 0.65, fanout: 4 }
    }

    /// Deterministic affinity successor set of a word (pseudo-random but
    /// fixed for all time — this is the learnable bigram structure).
    fn successor(&self, w: usize, j: usize) -> usize {
        // SplitMix64-style hash of (w, j).
        let mut x = (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(j as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.vocab_size as u64) as usize
    }

    fn next_word<R: Rng>(&self, prev: Option<usize>, rng: &mut R) -> usize {
        if let Some(p) = prev {
            if rng.gen_bool(self.chain_prob) {
                let j = rng.gen_range(0..self.fanout);
                return self.successor(p, j);
            }
        }
        self.zipf.sample(rng)
    }

    fn sentence<R: Rng>(&self, rng: &mut R, out: &mut String) -> usize {
        let len = rng.gen_range(6..=18);
        let mut prev = None;
        for i in 0..len {
            let w = self.next_word(prev, rng);
            prev = Some(w);
            let token = word(w);
            if i == 0 {
                let mut cs = token.chars();
                if let Some(c) = cs.next() {
                    out.push(c.to_ascii_uppercase());
                    out.push_str(cs.as_str());
                }
            } else {
                out.push(' ');
                out.push_str(&token);
            }
        }
        out.push('.');
        len
    }

    fn paragraph<R: Rng>(&self, sentences: usize, rng: &mut R, out: &mut String) -> usize {
        let mut words = 0;
        for i in 0..sentences {
            if i > 0 {
                out.push(' ');
            }
            words += self.sentence(rng, out);
        }
        words
    }

    /// Generate a corpus of roughly `target_words` words.
    pub fn generate(&self, kind: CorpusKind, target_words: usize, seed: u64) -> SyntheticCorpus {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xED6E_11FF);
        let mut text = String::with_capacity(target_words * 6);
        let mut words_emitted = 0usize;
        while words_emitted < target_words {
            match kind {
                CorpusKind::WikiText2Like => {
                    // Occasional heading, then a 2–6 sentence paragraph.
                    if rng.gen_bool(0.12) {
                        text.push_str("= ");
                        let h = self.zipf.sample(&mut rng);
                        text.push_str(&word(h));
                        text.push_str(" =\n\n");
                    }
                    let sentences = rng.gen_range(4..=14);
                    words_emitted += self.paragraph(sentences, &mut rng, &mut text);
                    text.push_str("\n\n");
                }
                CorpusKind::LongBenchLike => {
                    // A document: several long sections, few blank lines so
                    // paragraphs run long (long-context profile).
                    let sections = rng.gen_range(3..=6);
                    for _ in 0..sections {
                        let sentences = rng.gen_range(24..=60);
                        words_emitted += self.paragraph(sentences, &mut rng, &mut text);
                        text.push_str("\n\n");
                    }
                }
            }
        }
        SyntheticCorpus { kind, text }
    }
}

impl SyntheticCorpus {
    /// Convenience: generate with the default vocabulary size (2048 words).
    pub fn generate(kind: CorpusKind, target_words: usize, seed: u64) -> Self {
        Generator::new(2048).generate(kind, target_words, seed)
    }

    /// Paragraphs (blank-line separated), headings excluded.
    pub fn paragraphs(&self) -> Vec<&str> {
        self.text
            .split("\n\n")
            .map(str::trim)
            .filter(|p| !p.is_empty() && !p.starts_with('='))
            .collect()
    }

    /// Whitespace word count.
    pub fn word_count(&self) -> usize {
        self.text.split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_and_pronounceable() {
        let mut seen = HashSet::new();
        for i in 0..5000 {
            let w = word(i);
            assert!(w.len() >= 2 && w.len().is_multiple_of(2));
            assert!(seen.insert(w), "collision at {i}");
        }
    }

    #[test]
    fn short_ranks_get_short_words() {
        assert_eq!(word(0).len(), 2);
        assert!(word(100).len() <= 4);
        assert!(word(10_000).len() >= 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 2000, 1);
        let b = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 2000, 1);
        assert_eq!(a.text, b.text);
        let c = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 2000, 2);
        assert_ne!(a.text, c.text);
    }

    #[test]
    fn target_size_roughly_met() {
        let c = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 5000, 3);
        let n = c.word_count();
        assert!((5000..9000).contains(&n), "word count {n}");
    }

    #[test]
    fn longbench_paragraphs_are_longer() {
        let wiki = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 8000, 4);
        let lb = SyntheticCorpus::generate(CorpusKind::LongBenchLike, 8000, 4);
        let avg = |c: &SyntheticCorpus| {
            let ps = c.paragraphs();
            ps.iter().map(|p| p.split_whitespace().count()).sum::<usize>() as f64 / ps.len() as f64
        };
        assert!(avg(&lb) > 2.0 * avg(&wiki), "LongBench-like docs must run longer");
    }

    #[test]
    fn headings_are_excluded_from_paragraphs() {
        let c = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 4000, 5);
        assert!(c.text.contains("= "), "expect headings in raw text");
        for p in c.paragraphs() {
            assert!(!p.starts_with('='));
        }
    }

    #[test]
    fn markov_structure_is_learnable() {
        // Bigram mutual information: the affinity chain makes successor
        // distributions much sharper than independent Zipf draws would be.
        let c = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 20_000, 6);
        let toks: Vec<&str> = c
            .text
            .split_whitespace()
            .filter(|w| w.chars().all(|ch| ch.is_ascii_lowercase()))
            .collect();
        let mut bigrams: std::collections::HashMap<(&str, &str), usize> =
            std::collections::HashMap::new();
        let mut uni: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for w in toks.windows(2) {
            *bigrams.entry((w[0], w[1])).or_default() += 1;
            *uni.entry(w[0]).or_default() += 1;
        }
        // A repeated bigram count far above the independence expectation.
        let max_bigram = bigrams.values().max().copied().unwrap_or(0);
        assert!(max_bigram > 20, "chain structure missing: max bigram {max_bigram}");
    }
}
