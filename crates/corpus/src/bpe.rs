//! A from-scratch byte-pair-encoding tokenizer (train / encode / decode).
//!
//! GPT-style pre-tokenization: the text is split into words, each carrying
//! its leading space, so decoding is exact concatenation. Training merges
//! the most frequent adjacent symbol pair until the requested vocabulary
//! size is reached.

use std::collections::HashMap;

/// Reserved id for characters never seen during training.
pub const UNK: u32 = 0;

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Token string of each id (id 0 is `<unk>`).
    vocab: Vec<String>,
    /// Token string → id.
    token_ids: HashMap<String, u32>,
    /// Merge rules: (left, right) → rank (lower merges first).
    merges: HashMap<(u32, u32), u32>,
    /// Result id of each merge, indexed by rank.
    merge_result: Vec<u32>,
    /// Pair of each merge, indexed by rank.
    merge_pairs: Vec<(u32, u32)>,
}

impl BpeTokenizer {
    /// Train a tokenizer on `text`, growing the vocabulary to at most
    /// `vocab_size` entries (single characters + learned merges + `<unk>`).
    ///
    /// # Panics
    /// If `vocab_size` is too small to hold the corpus alphabet.
    pub fn train(text: &str, vocab_size: usize) -> Self {
        // Pre-tokenize: words with their leading space.
        let mut word_counts: HashMap<Vec<u32>, usize> = HashMap::new();

        // Alphabet pass.
        let mut vocab: Vec<String> = vec!["<unk>".to_string()];
        let mut token_ids: HashMap<String, u32> = HashMap::new();
        token_ids.insert("<unk>".to_string(), UNK);
        let id_of_char =
            |c: char, vocab: &mut Vec<String>, token_ids: &mut HashMap<String, u32>| -> u32 {
                let s = c.to_string();
                *token_ids.entry(s.clone()).or_insert_with(|| {
                    vocab.push(s);
                    (vocab.len() - 1) as u32
                })
            };

        for raw in split_with_spaces(text) {
            let ids: Vec<u32> =
                raw.chars().map(|c| id_of_char(c, &mut vocab, &mut token_ids)).collect();
            *word_counts.entry(ids).or_default() += 1;
        }
        assert!(
            vocab.len() <= vocab_size,
            "vocab_size {vocab_size} smaller than corpus alphabet {}",
            vocab.len()
        );

        let mut merges: HashMap<(u32, u32), u32> = HashMap::new();
        let mut merge_result: Vec<u32> = Vec::new();
        let mut merge_pairs: Vec<(u32, u32)> = Vec::new();
        let mut words: Vec<(Vec<u32>, usize)> = word_counts.into_iter().collect();
        // Deterministic order independent of hash state.
        words.sort();

        while vocab.len() < vocab_size {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(u32, u32), usize> = HashMap::new();
            for (w, c) in &words {
                for p in w.windows(2) {
                    *pair_counts.entry((p[0], p[1])).or_default() += c;
                }
            }
            // Most frequent pair; ties break lexicographically for
            // determinism.
            let Some((&best, &count)) =
                pair_counts.iter().max_by_key(|(pair, count)| (**count, std::cmp::Reverse(**pair)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing left worth merging
            }
            let new_token = format!("{}{}", vocab[best.0 as usize], vocab[best.1 as usize]);
            let new_id = vocab.len() as u32;
            vocab.push(new_token.clone());
            token_ids.insert(new_token, new_id);
            merges.insert(best, merge_result.len() as u32);
            merge_result.push(new_id);
            merge_pairs.push(best);
            // Apply the merge to every word.
            for (w, _) in &mut words {
                apply_merge(w, best, new_id);
            }
        }

        BpeTokenizer { vocab, token_ids, merges, merge_result, merge_pairs }
    }

    /// Vocabulary size (including `<unk>`).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The string of a token id.
    pub fn token(&self, id: u32) -> &str {
        &self.vocab[id as usize]
    }

    /// Encode text to token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3);
        let mut cache: HashMap<&str, Vec<u32>> = HashMap::new();
        for raw in split_with_spaces(text) {
            if let Some(ids) = cache.get(raw) {
                out.extend_from_slice(ids);
                continue;
            }
            let ids = self.encode_word(raw);
            out.extend_from_slice(&ids);
            cache.insert(raw, ids);
        }
        out
    }

    fn encode_word(&self, raw: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = raw
            .chars()
            .map(|c| self.token_ids.get(c.to_string().as_str()).copied().unwrap_or(UNK))
            .collect();
        // Repeatedly apply the lowest-rank merge present.
        loop {
            let mut best: Option<(u32, usize)> = None; // (rank, position)
            for (i, p) in ids.windows(2).enumerate() {
                if let Some(&rank) = self.merges.get(&(p[0], p[1])) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((rank, _)) = best else { break };
            let pair = self.merge_pairs[rank as usize];
            apply_merge(&mut ids, pair, self.merge_result[rank as usize]);
        }
        ids
    }

    /// Decode token ids back to text.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut s = String::new();
        for &id in ids {
            if id != UNK {
                s.push_str(&self.vocab[id as usize]);
            }
        }
        s
    }

    /// Tokens per word on a sample text — a sanity metric (good BPE on its
    /// own training corpus lands well under 2 tokens/word).
    pub fn fertility(&self, text: &str) -> f64 {
        let words = text.split_whitespace().count().max(1);
        self.encode(text).len() as f64 / words as f64
    }
}

/// Split text into word pieces that carry their leading whitespace, so that
/// concatenating pieces reproduces the input exactly.
fn split_with_spaces(text: &str) -> impl Iterator<Item = &str> {
    let mut pieces = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        // A piece is a maximal run of whitespace followed by a maximal run
        // of non-whitespace.
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        while i < bytes.len() && !(bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i > start {
            pieces.push(&text[start..i]);
            start = i;
        } else {
            break;
        }
    }
    pieces.into_iter()
}

/// Replace each adjacent occurrence of `pair` in `w` with `new_id`.
fn apply_merge(w: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut i = 0;
    let mut j = 0;
    while i < w.len() {
        if i + 1 < w.len() && w[i] == pair.0 && w[i + 1] == pair.1 {
            w[j] = new_id;
            i += 2;
        } else {
            w[j] = w[i];
            i += 1;
        }
        j += 1;
    }
    w.truncate(j);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusKind, SyntheticCorpus};

    fn sample_text() -> String {
        SyntheticCorpus::generate(CorpusKind::WikiText2Like, 3000, 42).text
    }

    #[test]
    fn encode_decode_roundtrip_on_training_text() {
        let text = sample_text();
        let tok = BpeTokenizer::train(&text, 512);
        let ids = tok.encode(&text);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn roundtrip_on_unseen_text_from_same_distribution() {
        let tok = BpeTokenizer::train(&sample_text(), 512);
        let unseen = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 1000, 77).text;
        let ids = tok.encode(&unseen);
        assert_eq!(tok.decode(&ids), unseen);
    }

    #[test]
    fn merges_reduce_token_count() {
        let text = sample_text();
        let small = BpeTokenizer::train(&text, 120); // barely above alphabet
        let large = BpeTokenizer::train(&text, 1024);
        let n_small = small.encode(&text).len();
        let n_large = large.encode(&text).len();
        assert!(
            n_large * 10 < n_small * 6,
            "1024-vocab ({n_large}) should cut well below the 120-vocab count ({n_small})"
        );
    }

    #[test]
    fn fertility_is_reasonable() {
        let text = sample_text();
        let tok = BpeTokenizer::train(&text, 1024);
        let f = tok.fertility(&text);
        assert!(f < 2.5, "fertility {f} too high");
    }

    #[test]
    fn unknown_chars_map_to_unk_and_are_dropped_in_decode() {
        let tok = BpeTokenizer::train("aba aba aba", 16);
        let ids = tok.encode("ab€a");
        assert!(ids.contains(&UNK));
        assert_eq!(tok.decode(&ids), "aba");
    }

    #[test]
    fn training_is_deterministic() {
        let text = sample_text();
        let a = BpeTokenizer::train(&text, 300);
        let b = BpeTokenizer::train(&text, 300);
        assert_eq!(a.encode(&text), b.encode(&text));
        assert_eq!(a.vocab_size(), b.vocab_size());
    }

    #[test]
    fn vocab_size_is_respected() {
        let tok = BpeTokenizer::train(&sample_text(), 256);
        assert!(tok.vocab_size() <= 256);
        assert!(tok.vocab_size() > 30); // alphabet + merges
    }
}
