//! Zipfian rank-frequency sampling.
//!
//! Natural-language word frequencies follow a Zipf law (`p(rank) ∝ rank^−s`
//! with `s ≈ 1`); the synthetic corpora sample their vocabulary through this
//! distribution so that token statistics (type/token ratio, unigram entropy)
//! land in the same regime as WikiText2.

use rand::Rng;

/// A cumulative-table Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search the CDF.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[100]);
        // Zipf s=1: p(0)/p(9) = 10.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 4.0 && ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
