//! # edgellm-corpus — synthetic workloads and a from-scratch BPE tokenizer
//!
//! The paper draws prompts from **WikiText2** and **LongBench** and samples
//! them into batches (§2: "We extract paragraphs with ≥ 256 tokens as a pool
//! of valid prompts. For each inference batch, we randomly sample the
//! required number of prompts."). Neither dataset ships with this
//! repository, so this crate provides *seeded synthetic equivalents* with
//! controlled statistics:
//!
//! * [`generator`] — a Zipfian-vocabulary, Markov-structured text generator
//!   with two profiles: [`CorpusKind::WikiText2Like`] (medium encyclopedic
//!   paragraphs, headings) and [`CorpusKind::LongBenchLike`] (long
//!   multi-section documents). For performance experiments only the token
//!   *counts* matter; for perplexity the *distribution* matters — both are
//!   preserved (see DESIGN.md §1).
//! * [`bpe`] — a byte-pair-encoding tokenizer trained from scratch on the
//!   synthetic corpora (train / encode / decode, with round-trip tests).
//! * [`pool`] — the paper's prompt pool: paragraphs of ≥ N tokens, with a
//!   seeded batch sampler.

pub mod bpe;
pub mod generator;
pub mod pool;
pub mod stats;
pub mod zipf;

pub use bpe::BpeTokenizer;
pub use generator::{CorpusKind, SyntheticCorpus};
pub use pool::PromptPool;
pub use stats::CorpusStats;
pub use zipf::Zipf;
