//! The paper's prompt pool: paragraphs of ≥ N tokens, sampled per batch.

use crate::bpe::BpeTokenizer;
use crate::generator::SyntheticCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum paragraph length (tokens) for pool membership, from §2 of the
/// paper ("We extract paragraphs with ≥ 256 tokens as a pool of valid
/// prompts").
pub const MIN_POOL_TOKENS: usize = 256;

/// A pool of tokenized prompts extracted from a corpus.
#[derive(Debug, Clone)]
pub struct PromptPool {
    prompts: Vec<Vec<u32>>,
}

impl PromptPool {
    /// Build a pool from a corpus: tokenize each paragraph and keep those
    /// with at least `min_tokens` tokens.
    pub fn build(corpus: &SyntheticCorpus, tok: &BpeTokenizer, min_tokens: usize) -> Self {
        let prompts = corpus
            .paragraphs()
            .iter()
            .map(|p| tok.encode(p))
            .filter(|ids| ids.len() >= min_tokens)
            .collect();
        PromptPool { prompts }
    }

    /// Build with the paper's 256-token minimum.
    pub fn build_paper(corpus: &SyntheticCorpus, tok: &BpeTokenizer) -> Self {
        Self::build(corpus, tok, MIN_POOL_TOKENS)
    }

    /// Number of pooled prompts.
    pub fn len(&self) -> usize {
        self.prompts.len()
    }

    /// True when no paragraph met the minimum length.
    pub fn is_empty(&self) -> bool {
        self.prompts.is_empty()
    }

    /// Sample a batch of `batch_size` prompts, each truncated to exactly
    /// `input_tokens` tokens — the paper's "diverse subset … of the
    /// 256-token prompts to form a single input" (§2). Sampling is with
    /// replacement, seeded.
    ///
    /// # Panics
    /// If the pool is empty or a pooled prompt is shorter than
    /// `input_tokens` (cannot happen when `input_tokens ≤ min_tokens`).
    pub fn sample_batch(&self, batch_size: usize, input_tokens: usize, seed: u64) -> Vec<Vec<u32>> {
        assert!(!self.prompts.is_empty(), "prompt pool is empty");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch_size)
            .map(|_| {
                let p = &self.prompts[rng.gen_range(0..self.prompts.len())];
                // Long inputs may need several pooled prompts concatenated
                // ("or multiples of the 256-token prompts").
                if p.len() >= input_tokens {
                    p[..input_tokens].to_vec()
                } else {
                    let mut ids = p.clone();
                    while ids.len() < input_tokens {
                        let q = &self.prompts[rng.gen_range(0..self.prompts.len())];
                        ids.extend_from_slice(q);
                    }
                    ids.truncate(input_tokens);
                    ids
                }
            })
            .collect()
    }

    /// All pooled prompts, for perplexity evaluation streams.
    pub fn prompts(&self) -> &[Vec<u32>] {
        &self.prompts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusKind;

    fn fixture() -> (SyntheticCorpus, BpeTokenizer) {
        let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 30_000, 9);
        let tok = BpeTokenizer::train(&corpus.text, 512);
        (corpus, tok)
    }

    #[test]
    fn pool_respects_min_tokens() {
        let (corpus, tok) = fixture();
        let pool = PromptPool::build(&corpus, &tok, 64);
        assert!(!pool.is_empty());
        for p in pool.prompts() {
            assert!(p.len() >= 64);
        }
    }

    #[test]
    fn paper_pool_has_256_token_prompts() {
        let (corpus, tok) = fixture();
        let pool = PromptPool::build_paper(&corpus, &tok);
        assert!(!pool.is_empty(), "WikiText2-like corpus must yield ≥256-token paragraphs");
        for p in pool.prompts() {
            assert!(p.len() >= MIN_POOL_TOKENS);
        }
    }

    #[test]
    fn batches_have_exact_shape() {
        let (corpus, tok) = fixture();
        let pool = PromptPool::build(&corpus, &tok, 64);
        let batch = pool.sample_batch(32, 32, 1);
        assert_eq!(batch.len(), 32);
        for p in &batch {
            assert_eq!(p.len(), 32);
        }
    }

    #[test]
    fn long_inputs_concatenate_prompts() {
        let (corpus, tok) = fixture();
        let pool = PromptPool::build(&corpus, &tok, 64);
        let batch = pool.sample_batch(2, 2048, 2);
        for p in &batch {
            assert_eq!(p.len(), 2048);
        }
    }

    #[test]
    fn sampling_is_seeded() {
        let (corpus, tok) = fixture();
        let pool = PromptPool::build(&corpus, &tok, 64);
        assert_eq!(pool.sample_batch(4, 16, 5), pool.sample_batch(4, 16, 5));
        assert_ne!(pool.sample_batch(4, 16, 5), pool.sample_batch(4, 16, 6));
    }
}
