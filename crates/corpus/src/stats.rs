//! Corpus-level statistics used to sanity-check the synthetic generators.

use std::collections::HashMap;

/// Summary statistics of a token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total tokens.
    pub tokens: usize,
    /// Distinct tokens.
    pub types: usize,
    /// Unigram entropy in bits.
    pub unigram_entropy_bits: f64,
    /// Type/token ratio.
    pub ttr: f64,
}

impl CorpusStats {
    /// Compute statistics over a token-id stream.
    pub fn from_tokens(ids: &[u32]) -> Self {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &id in ids {
            *counts.entry(id).or_default() += 1;
        }
        let n = ids.len() as f64;
        let entropy = counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        CorpusStats {
            tokens: ids.len(),
            types: counts.len(),
            unigram_entropy_bits: entropy,
            ttr: counts.len() as f64 / n.max(1.0),
        }
    }

    /// Perplexity of the unigram (bag-of-tokens) model — the ceiling any
    /// context-free predictor can reach; context models must beat this.
    pub fn unigram_perplexity(&self) -> f64 {
        2f64.powf(self.unigram_entropy_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpe::BpeTokenizer;
    use crate::generator::{CorpusKind, SyntheticCorpus};

    #[test]
    fn uniform_stream_entropy() {
        let ids: Vec<u32> = (0..1024).map(|i| i % 16).collect();
        let s = CorpusStats::from_tokens(&ids);
        assert_eq!(s.types, 16);
        assert!((s.unigram_entropy_bits - 4.0).abs() < 1e-9);
        assert!((s.unigram_perplexity() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn constant_stream_has_zero_entropy() {
        let s = CorpusStats::from_tokens(&[7; 100]);
        assert_eq!(s.types, 1);
        assert_eq!(s.unigram_entropy_bits, 0.0);
    }

    #[test]
    fn synthetic_corpus_entropy_in_natural_range() {
        let c = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 20_000, 3);
        let tok = BpeTokenizer::train(&c.text, 512);
        let s = CorpusStats::from_tokens(&tok.encode(&c.text));
        // Zipfian text over a 512-token BPE vocab: entropy well below
        // log2(512)=9 but far above trivial.
        assert!(
            s.unigram_entropy_bits > 4.0 && s.unigram_entropy_bits < 9.0,
            "entropy {}",
            s.unigram_entropy_bits
        );
        assert!(s.ttr < 0.1, "Zipfian text reuses tokens heavily");
    }
}
