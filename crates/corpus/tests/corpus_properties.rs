//! Property-based tests of the corpus substrate.

use edgellm_corpus::{BpeTokenizer, CorpusKind, PromptPool, SyntheticCorpus, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf PMFs are valid distributions and rank-monotone for any (n, s).
    #[test]
    fn zipf_pmf_is_a_monotone_distribution(n in 1usize..500, s_tenths in 0u32..25) {
        let z = Zipf::new(n, s_tenths as f64 / 10.0);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    /// Zipf samples are always in range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..200, seed in 0u64..100) {
        let z = Zipf::new(n, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Corpus generation hits its size target and stays deterministic for
    /// any seed and either profile.
    #[test]
    fn corpus_size_and_determinism(seed in 0u64..100, wiki in proptest::bool::ANY, words in 500usize..4000) {
        let kind = if wiki { CorpusKind::WikiText2Like } else { CorpusKind::LongBenchLike };
        let a = SyntheticCorpus::generate(kind, words, seed);
        let b = SyntheticCorpus::generate(kind, words, seed);
        prop_assert_eq!(&a.text, &b.text);
        let n = a.word_count();
        // The generator budgets by estimated sentence length, so the
        // realized count can fall slightly short of the target; the
        // LongBench profile emits whole multi-section documents, so small
        // targets overshoot by up to one document (~7k words).
        prop_assert!(n * 10 >= words * 9 && n < words * 3 + 7000, "target {words}, got {n}");
    }

    /// Every sampled prompt batch has the exact requested shape, for any
    /// batch size and input length, and truncation never fabricates ids.
    #[test]
    fn prompt_batches_have_exact_shape(bs in 1usize..48, n_in in 1usize..300, seed in 0u64..50) {
        let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 12_000, 7);
        let tok = BpeTokenizer::train(&corpus.text, 300);
        let pool = PromptPool::build(&corpus, &tok, 64);
        prop_assume!(!pool.is_empty());
        let batch = pool.sample_batch(bs, n_in, seed);
        prop_assert_eq!(batch.len(), bs);
        let vocab = tok.vocab_size() as u32;
        for p in &batch {
            prop_assert_eq!(p.len(), n_in);
            prop_assert!(p.iter().all(|&id| id < vocab));
        }
    }
}
