//! Table 3: perplexity vs quantization — **measured**, not modeled.
//!
//! The paper's models cannot run here, so four scaled-down language models
//! ("-sim" counterparts, capacity-ordered like the paper's 2.7B→32.8B
//! lineup) are *actually trained* on the synthetic WikiText2-like and
//! LongBench-like corpora, then *actually quantized* through the real
//! FP16/INT8/INT4 codecs, and evaluated with the paper's exact protocol
//! (sliding 1024-token windows, stride 512). The OoM cells come from the
//! memory model applied to the corresponding *real* model (Mistral FP32,
//! DeepSeek FP32/FP16 do not load on a 64 GB device).
//!
//! Absolute perplexities differ from the paper's (different corpus,
//! tokenizer and scale — see EXPERIMENTS.md); every *ordinal* claim of
//! Table 3 is checked: FP32 ≈ FP16, INT8 slightly worse, INT4 sharply
//! worse, larger models better, small models degraded more.

use crate::report::{vs_cell, Check, ExperimentResult, Table};
use edgellm_core::perplexity::sliding_window_perplexity;
use edgellm_core::Dataset;
use edgellm_corpus::{BpeTokenizer, CorpusKind, SyntheticCorpus};
use edgellm_mem::MemoryModel;
use edgellm_models::{Llm, Precision};
use edgellm_nn::quantize::to_precision;
use edgellm_nn::{MlpLm, MlpLmConfig, WeightPrecision};
use rayon::prelude::*;

/// A scaled-down stand-in for one of the paper's models.
#[derive(Debug, Clone, Copy)]
pub struct SimLmSpec {
    /// The real model this stands in for (drives the OoM cells).
    pub llm: Llm,
    /// Display name.
    pub name: &'static str,
    /// Scaled-down architecture (capacity ordered like the real lineup).
    pub cfg: MlpLmConfig,
}

/// The four stand-ins. Hidden sizes are ordered like the paper's
/// parameter counts (2.7B < 8B < 23.6B < 32.8B, scaled ~10⁵×down).
pub fn sim_specs() -> [SimLmSpec; 4] {
    [
        SimLmSpec {
            llm: Llm::Phi2,
            name: "phi2-sim",
            cfg: MlpLmConfig { vocab: 512, context: 4, d_emb: 16, hidden: 24, seed: 101 },
        },
        SimLmSpec {
            llm: Llm::Llama31_8b,
            name: "llama3-sim",
            cfg: MlpLmConfig { vocab: 512, context: 4, d_emb: 24, hidden: 56, seed: 102 },
        },
        SimLmSpec {
            llm: Llm::MistralSmall24b,
            name: "mistral-sim",
            cfg: MlpLmConfig { vocab: 512, context: 4, d_emb: 32, hidden: 112, seed: 103 },
        },
        SimLmSpec {
            llm: Llm::DeepseekQwen32b,
            name: "deepq-sim",
            cfg: MlpLmConfig { vocab: 512, context: 4, d_emb: 40, hidden: 160, seed: 104 },
        },
    ]
}

/// Map the storage precision to the codec precision.
fn codec(prec: Precision) -> WeightPrecision {
    match prec {
        Precision::Fp32 => WeightPrecision::Fp32,
        Precision::Fp16 => WeightPrecision::Fp16,
        Precision::Int8 => WeightPrecision::Int8,
        Precision::Int4 => WeightPrecision::Int4,
    }
}

/// The full Table 3 experiment. `fast` trims training steps and eval
/// tokens for smoke runs.
pub fn run(fast: bool) -> ExperimentResult {
    let (train_words, steps, eval_tokens) =
        if fast { (30_000, 500, 6_000) } else { (90_000, 2_000, 24_000) };

    // Corpora: train on a mix, evaluate on held-out text of each kind.
    let wiki_train = SyntheticCorpus::generate(CorpusKind::WikiText2Like, train_words, 11);
    let lb_train = SyntheticCorpus::generate(CorpusKind::LongBenchLike, train_words, 12);
    let wiki_eval = SyntheticCorpus::generate(CorpusKind::WikiText2Like, train_words / 2, 21);
    let lb_eval = SyntheticCorpus::generate(CorpusKind::LongBenchLike, train_words / 2, 22);

    let tok = BpeTokenizer::train(&wiki_train.text, 512);
    let mut train_stream = tok.encode(&wiki_train.text);
    train_stream.extend(tok.encode(&lb_train.text));
    let mut wiki_stream = tok.encode(&wiki_eval.text);
    wiki_stream.truncate(eval_tokens);
    let mut lb_stream = tok.encode(&lb_eval.text);
    lb_stream.truncate(eval_tokens);

    // Train the four stand-ins in parallel. Larger models need more
    // optimizer steps to converge (the real lineup's training budgets also
    // scale with size), so steps scale with the hidden width.
    let trained: Vec<(SimLmSpec, MlpLm)> = sim_specs()
        .into_par_iter()
        .map(|spec| {
            let mut m = MlpLm::new(spec.cfg);
            let model_steps = steps * (24 + spec.cfg.hidden) / 48;
            m.train(&train_stream, model_steps, 64, 3e-3, spec.cfg.seed ^ 0xFEED);
            (spec, m)
        })
        .collect();

    // Evaluate every feasible (model, precision, dataset) cell.
    type Row = [Option<f64>; 4];
    let evaluate = |spec: &SimLmSpec, model: &MlpLm, stream: &[u32]| -> Row {
        let mut row = [None; 4];
        for (i, &prec) in Precision::ALL.iter().enumerate() {
            // OoM gate from the *real* model's footprint on the 64 GB device.
            let mm = MemoryModel::new(spec.llm, prec, 64.0);
            if !mm.model_loads() {
                continue;
            }
            let q = to_precision(model, codec(prec));
            row[i] = Some(sliding_window_perplexity(&q, stream).perplexity);
        }
        row
    };
    let results: Vec<(SimLmSpec, Row, Row)> = trained
        .par_iter()
        .map(|(spec, model)| {
            (*spec, evaluate(spec, model, &wiki_stream), evaluate(spec, model, &lb_stream))
        })
        .collect();

    // Render.
    let mut t = Table::new(vec![
        "Model", "W-FP32", "W-FP16", "W-INT8", "W-INT4", "L-FP32", "L-FP16", "L-INT8", "L-INT4",
    ]);
    let mut csv = Table::new(vec!["model", "dataset", "precision", "ours_ppl", "paper_ppl"]);
    let mut checks = Vec::new();
    for ((spec, wiki, lb), (p_llm, p_wiki, p_lb)) in results.iter().zip(crate::paper::TABLE3.iter())
    {
        assert_eq!(spec.llm, *p_llm);
        let mut cells = vec![spec.name.to_string()];
        for (ours, paper) in wiki.iter().zip(p_wiki).chain(lb.iter().zip(p_lb)) {
            cells.push(vs_cell(*ours, *paper, 2));
        }
        t.row(cells);
        for (ds, ours, paper) in
            [(Dataset::WikiText2, wiki, p_wiki), (Dataset::LongBench, lb, p_lb)]
        {
            for ((o, p), prec) in ours.iter().zip(paper).zip(Precision::ALL) {
                let fmt = |v: &Option<f64>| v.map_or("OOM".into(), |x| format!("{x:.3}"));
                csv.row(vec![
                    spec.name.to_string(),
                    ds.label().to_string(),
                    prec.label().to_string(),
                    fmt(o),
                    fmt(p),
                ]);
                checks.push(Check::new(
                    format!("{} {} {}: OoM status matches Table 3", spec.name, ds.label(), prec),
                    o.is_none() == p.is_none(),
                    format!("ours {} vs paper {}", fmt(o), fmt(p)),
                ));
            }
            // Ordinal claims per row (where cells exist).
            if let (Some(p32), Some(p16)) = (ours[0], ours[1]) {
                checks.push(Check::new(
                    format!("{} {}: FP16 ≈ FP32 (Table 3)", spec.name, ds.label()),
                    (p16 - p32).abs() / p32 < 0.02,
                    format!("{p32:.2} vs {p16:.2}"),
                ));
            }
            if let (Some(base), Some(p8)) = (ours[1].or(ours[0]).or(ours[2]), ours[2]) {
                checks.push(Check::new(
                    format!("{} {}: INT8 no better than FP16 (Table 3)", spec.name, ds.label()),
                    p8 >= base * 0.995,
                    format!("{base:.2} → {p8:.2}"),
                ));
            }
            if let (Some(p8), Some(p4)) = (ours[2], ours[3]) {
                checks.push(Check::new(
                    format!("{} {}: INT4 clearly worse than INT8 (Table 3)", spec.name, ds.label()),
                    p4 > p8,
                    format!("{p8:.2} → {p4:.2}"),
                ));
            }
        }
    }

    // Capacity ordering: larger sim models fit the corpus better (at their
    // serving precision, like the real lineup's FP32/best-available cells).
    let best = |row: &Row| row.iter().flatten().copied().next();
    let wiki_best: Vec<f64> = results.iter().filter_map(|(_, w, _)| best(w)).collect();
    checks.push(Check::new(
        "larger models achieve lower perplexity (Table 3 row ordering)",
        wiki_best.windows(2).all(|w| w[1] < w[0]),
        format!("{wiki_best:.2?}"),
    ));
    // Small models degrade more under INT4 (§3.3 / Dettmers).
    let degradation: Vec<Option<f64>> = results
        .iter()
        .map(|(_, w, _)| match (w[2], w[3]) {
            (Some(p8), Some(p4)) => Some(p4 / p8 - 1.0),
            _ => None,
        })
        .collect();
    if let (Some(Some(small)), Some(Some(large))) = (degradation.first(), degradation.last()) {
        checks.push(Check::new(
            "smallest model degrades more under INT4 than largest (§3.3)",
            small > large,
            format!("phi2-sim +{:.1}% vs deepq-sim +{:.1}%", small * 100.0, large * 100.0),
        ));
    }

    ExperimentResult {
        id: "tab3",
        title: "Table 3 — perplexity vs precision (real training + quantization)".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("perplexity".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes_reproduce_fast() {
        let r = run(true);
        let failed: Vec<_> = r.checks.iter().filter(|c| !c.pass).collect();
        // Allow at most 2 noisy ordinal misses in fast mode, none on OoM.
        assert!(
            failed.len() <= 2 && failed.iter().all(|c| !c.claim.contains("OoM")),
            "{}",
            r.render()
        );
    }
}
