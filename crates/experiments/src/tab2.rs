//! Table 2: the nine power-mode resource configurations.

use crate::report::{Check, ExperimentResult, Table};
use edgellm_hw::{DeviceSpec, PowerModeRegistry};

/// Render the registry's stock modes (Table 2) and validate them.
pub fn run() -> ExperimentResult {
    let reg = PowerModeRegistry::with_table2(DeviceSpec::orin_agx_64gb());
    let mut t = Table::new(vec!["Power Mode", "GPU MHz", "CPU GHz", "Cores", "Mem MHz", "Varies"]);
    let mut csv = Table::new(vec!["mode", "gpu_mhz", "cpu_ghz", "cores", "mem_mhz"]);
    for m in reg.iter() {
        t.row(vec![
            m.name.clone(),
            m.clocks.gpu_mhz.to_string(),
            format!("{:.1}", m.clocks.cpu_ghz),
            m.clocks.cores_online.to_string(),
            m.clocks.mem_mhz.to_string(),
            m.throttle_summary(),
        ]);
        csv.row(vec![
            m.name.clone(),
            m.clocks.gpu_mhz.to_string(),
            format!("{}", m.clocks.cpu_ghz),
            m.clocks.cores_online.to_string(),
            m.clocks.mem_mhz.to_string(),
        ]);
    }
    let checks = vec![
        Check::new("nine modes (MaxN + A–H)", reg.len() == 9, format!("{} modes", reg.len())),
        Check::new(
            "all modes valid on the Orin AGX",
            reg.iter().all(|m| m.validate(reg.device()).is_ok()),
            "validated against device limits".to_string(),
        ),
    ];
    ExperimentResult {
        id: "tab2",
        title: "Table 2 — power-mode resource configurations".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("power_modes".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_reproduces() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
        assert!(r.tables[0].contains("MaxN"));
        assert!(r.tables[0].contains("665"));
    }
}
