//! Fig 5: the nine power modes — latency bars with energy and power
//! markers (bs = 32, sl = 96, FP16 / INT8 for DeepSeek).

use crate::batch_sweep::serving_precision;
use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::{Engine, Protocol, RunConfig};
use edgellm_hw::{PowerMode, PowerModeId};
use edgellm_models::Llm;
use rayon::prelude::*;

/// Run the power-mode grid for all models.
pub fn run(protocol: Protocol) -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let grid: Vec<(Llm, Vec<(PowerModeId, edgellm_core::RunMetrics)>)> = Llm::ALL
        .par_iter()
        .map(|&llm| {
            let per_mode = PowerModeId::ALL
                .par_iter()
                .map(|&id| {
                    let cfg = RunConfig::new(llm, serving_precision(llm))
                        .power_mode(PowerMode::table2(id));
                    (id, protocol.run(&engine, &cfg).expect("sl=96 fits"))
                })
                .collect();
            (llm, per_mode)
        })
        .collect();

    let mut tables = Vec::new();
    let mut checks = Vec::new();
    let mut csv = Table::new(vec![
        "model",
        "mode",
        "latency_s",
        "power_w",
        "energy_j",
        "vs_maxn_latency",
        "vs_maxn_power",
    ]);

    for (llm, rows) in &grid {
        let maxn = &rows[0].1;
        let mut t = Table::new(vec![
            "mode",
            "latency s",
            "power W",
            "energy J",
            "Δlatency",
            "Δpower",
            "Δenergy",
        ]);
        for (id, m) in rows {
            let dl = m.latency_s / maxn.latency_s - 1.0;
            let dp = m.median_power_w / maxn.median_power_w - 1.0;
            let de = m.energy_j / maxn.energy_j - 1.0;
            t.row(vec![
                id.name().to_string(),
                format!("{:.2}", m.latency_s),
                format!("{:.1}", m.median_power_w),
                format!("{:.0}", m.energy_j),
                format!("{dl:+.0}%", dl = dl * 100.0),
                format!("{dp:+.0}%", dp = dp * 100.0),
                format!("{de:+.0}%", de = de * 100.0),
            ]);
            csv.row(vec![
                llm.short_name().to_string(),
                id.name().to_string(),
                format!("{:.3}", m.latency_s),
                format!("{:.2}", m.median_power_w),
                format!("{:.1}", m.energy_j),
                format!("{:.3}", dl),
                format!("{:.3}", dp),
            ]);
        }
        tables.push(format!("{}:\n{}", llm.short_name(), t.render()));
    }

    // ASCII rendition of Fig 5's latency bars (Llama).
    if let Some((_, rows)) = grid.iter().find(|(l, _)| *l == Llm::Llama31_8b) {
        let bars: Vec<(String, f64)> =
            rows.iter().map(|(id, m)| (id.name().to_string(), m.latency_s)).collect();
        tables.push(crate::figviz::bars(
            "Fig 5 shape — Llama latency (s) per power mode",
            &bars,
            48,
        ));
    }

    let get = |llm: Llm, id: PowerModeId| -> &edgellm_core::RunMetrics {
        &grid
            .iter()
            .find(|(l, _)| *l == llm)
            .expect("model present")
            .1
            .iter()
            .find(|(m, _)| *m == id)
            .expect("mode present")
            .1
    };

    // §3.4 claims, checked on Llama as the paper does.
    let llama = Llm::Llama31_8b;
    let maxn = get(llama, PowerModeId::MaxN);
    let a = get(llama, PowerModeId::A);
    checks.push(Check::new(
        "PM-A cuts instantaneous power ≈28% (§3.4)",
        (0.15..0.45).contains(&(1.0 - a.median_power_w / maxn.median_power_w)),
        format!("−{:.0}%", (1.0 - a.median_power_w / maxn.median_power_w) * 100.0),
    ));
    checks.push(Check::new(
        "PM-A adds ≈26% latency (§3.4)",
        (0.10..0.45).contains(&(a.latency_s / maxn.latency_s - 1.0)),
        format!("+{:.0}%", (a.latency_s / maxn.latency_s - 1.0) * 100.0),
    ));
    checks.push(Check::new(
        "PM-A lowers total energy vs MaxN (§3.4)",
        a.energy_j < maxn.energy_j,
        format!("{:.0} J vs {:.0} J", a.energy_j, maxn.energy_j),
    ));
    let b = get(llama, PowerModeId::B);
    checks.push(Check::new(
        "PM-B cuts power ≈51% but costs more total energy than MaxN (§3.4)",
        (1.0 - b.median_power_w / maxn.median_power_w) > 0.35 && b.energy_j > maxn.energy_j,
        format!(
            "power −{:.0}%, energy {:+.0}%",
            (1.0 - b.median_power_w / maxn.median_power_w) * 100.0,
            (b.energy_j / maxn.energy_j - 1.0) * 100.0
        ),
    ));
    for id in [PowerModeId::E, PowerModeId::F] {
        let m = get(llama, id);
        checks.push(Check::new(
            format!("PM-{} (core count) has negligible latency impact (§3.4)", id.name()),
            (m.latency_s / maxn.latency_s - 1.0).abs() < 0.05,
            format!("{:+.1}%", (m.latency_s / maxn.latency_s - 1.0) * 100.0),
        ));
    }
    let h = get(llama, PowerModeId::H);
    checks.push(Check::new(
        "PM-H: latency ≈+370%, energy up ≈72%, power down ≈52% (§3.4)",
        h.latency_s / maxn.latency_s > 3.0
            && h.energy_j > 1.3 * maxn.energy_j
            && h.median_power_w < 0.75 * maxn.median_power_w,
        format!(
            "latency +{:.0}%, energy +{:.0}%, power −{:.0}%",
            (h.latency_s / maxn.latency_s - 1.0) * 100.0,
            (h.energy_j / maxn.energy_j - 1.0) * 100.0,
            (1.0 - h.median_power_w / maxn.median_power_w) * 100.0
        ),
    ));
    // DeepSeek (INT8, CPU-assisted) is more CPU-frequency sensitive (§3.4).
    let d_llama = get(llama, PowerModeId::D).latency_s / maxn.latency_s - 1.0;
    let deepq_maxn = get(Llm::DeepseekQwen32b, PowerModeId::MaxN);
    let d_deepq = get(Llm::DeepseekQwen32b, PowerModeId::D).latency_s / deepq_maxn.latency_s - 1.0;
    checks.push(Check::new(
        "CPU throttling (PM-D) hits DeepSeek/INT8 harder than Llama/FP16 (§3.4)",
        d_deepq > d_llama * 2.0,
        format!("DeepQ +{:.0}% vs Llama +{:.0}%", d_deepq * 100.0, d_llama * 100.0),
    ));

    ExperimentResult {
        id: "fig5",
        title: "Fig 5 — power modes (bs=32, sl=96)".to_string(),
        tables,
        checks,
        csv: vec![("power_modes".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_modes_reproduce() {
        let r = run(Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
    }
}
