//! Fig 3 / Fig 11: quantization's impact on latency, throughput and
//! memory (bs = 32, sl = 96, MaxN), with OoM cells where weights don't
//! fit.

use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::{Engine, Protocol, RunConfig, RunError};
use edgellm_models::{Llm, Precision};
use rayon::prelude::*;

type CellResult = Result<edgellm_core::RunMetrics, RunError>;

/// Run the quantization grid: 4 models × 4 precisions.
pub fn run(protocol: Protocol) -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let grid: Vec<(Llm, Vec<CellResult>)> = Llm::ALL
        .par_iter()
        .map(|&llm| {
            let cells = Precision::ALL
                .par_iter()
                .map(|&prec| protocol.run(&engine, &RunConfig::new(llm, prec)))
                .collect();
            (llm, cells)
        })
        .collect();

    let mut tables = Vec::new();
    let mut checks = Vec::new();
    let mut csv =
        Table::new(vec!["model", "precision", "latency_s", "tp_tok_s", "ram_gb", "gpu_util"]);

    for (llm, cells) in &grid {
        let mut t = Table::new(vec!["precision", "latency s", "tok/s", "RAM GB", "GPU util"]);
        for (prec, cell) in Precision::ALL.iter().zip(cells) {
            let (lat, tp, ram, util) = match cell {
                Ok(m) => (
                    Some(m.latency_s),
                    Some(m.throughput_tok_s),
                    Some(m.peak_mem_gb),
                    // RunMetrics doesn't carry util; re-derive from a
                    // single batch for display.
                    engine.run_batch(&RunConfig::new(*llm, *prec)).ok().map(|b| b.gpu_util),
                ),
                Err(_) => (None, None, None, None),
            };
            let f = |v: Option<f64>, d: usize| v.map_or("OOM".to_string(), |x| format!("{x:.d$}"));
            t.row(vec![prec.label().to_string(), f(lat, 2), f(tp, 1), f(ram, 1), f(util, 2)]);
            csv.row(vec![
                llm.short_name().to_string(),
                prec.label().to_string(),
                f(lat, 3),
                f(tp, 1),
                f(ram, 2),
                f(util, 3),
            ]);
        }
        tables.push(format!("{}:\n{}", llm.short_name(), t.render()));
    }

    let get = |llm: Llm, p: Precision| -> Option<edgellm_core::RunMetrics> {
        let (_, cells) = grid.iter().find(|(l, _)| *l == llm)?;
        let idx = Precision::ALL.iter().position(|&q| q == p)?;
        cells[idx].as_ref().ok().cloned()
    };

    // §3.3 headline claims.
    for llm in [Llm::Phi2, Llm::Llama31_8b] {
        let f16 = get(llm, Precision::Fp16).expect("fp16 runs");
        let i8 = get(llm, Precision::Int8).expect("int8 runs");
        let slow = i8.latency_s / f16.latency_s - 1.0;
        checks.push(Check::new(
            format!("{}: INT8 ≈ 62% slower than FP16 (§3.3)", llm.short_name()),
            (0.35..0.95).contains(&slow),
            format!("+{:.0}%", slow * 100.0),
        ));
        let ram_save = 1.0 - i8.peak_mem_gb / f16.peak_mem_gb;
        // Phi-2's FP32 KV cache dilutes the weight-side saving at bs=32,
        // so the observed total-RAM saving sits below the weights-only 46%.
        checks.push(Check::new(
            format!("{}: INT8 cuts RAM substantially (§3.3: ≈46%)", llm.short_name()),
            (0.25..0.60).contains(&ram_save),
            format!("−{:.0}% of peak total", ram_save * 100.0),
        ));
    }
    {
        let f16 = get(Llm::MistralSmall24b, Precision::Fp16).expect("fp16 runs");
        let i8 = get(Llm::MistralSmall24b, Precision::Int8).expect("int8 runs");
        let slow = i8.latency_s / f16.latency_s - 1.0;
        checks.push(Check::new(
            "Mistral-24B: INT8 within ≈2% of FP16 latency (§3.3)",
            slow.abs() < 0.10,
            format!("{:+.1}%", slow * 100.0),
        ));
        let ram_save = 1.0 - i8.peak_mem_gb / f16.peak_mem_gb;
        checks.push(Check::new(
            "Mistral-24B: INT8 cuts RAM ≈ 47% (§3.3)",
            (0.35..0.55).contains(&ram_save),
            format!("−{:.0}%", ram_save * 100.0),
        ));
    }
    // INT4 is slower than INT8 everywhere it runs (§3.3/Fig 11).
    for llm in Llm::ALL {
        if let (Some(i8), Some(i4)) = (get(llm, Precision::Int8), get(llm, Precision::Int4)) {
            checks.push(Check::new(
                format!("{}: INT4 slower than INT8 (Fig 11)", llm.short_name()),
                i4.latency_s > i8.latency_s,
                format!("{:.1}s vs {:.1}s", i4.latency_s, i8.latency_s),
            ));
        }
    }
    // OoM pattern: Mistral FP32, DeepSeek FP32+FP16.
    for (llm, prec, should_oom) in [
        (Llm::MistralSmall24b, Precision::Fp32, true),
        (Llm::DeepseekQwen32b, Precision::Fp32, true),
        (Llm::DeepseekQwen32b, Precision::Fp16, true),
        (Llm::Phi2, Precision::Fp32, false),
        (Llm::Llama31_8b, Precision::Fp32, false),
    ] {
        let oomed = get(llm, prec).is_none();
        checks.push(Check::new(
            format!("{} {}: OoM status matches Fig 3", llm.short_name(), prec),
            oomed == should_oom,
            format!("ours {} vs paper {}", oomed, should_oom),
        ));
    }
    // GPU utilization claims: INT8 ≈ 60%, INT4 ≈ 100% (§3.3).
    if let Ok(b8) = engine.run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Int8)) {
        checks.push(Check::new(
            "INT8 uses only ≈60% of the GPU (§3.3)",
            (0.40..0.75).contains(&b8.gpu_util),
            format!("{:.0}%", b8.gpu_util * 100.0),
        ));
    }
    if let Ok(b4) = engine.run_batch(&RunConfig::new(Llm::Llama31_8b, Precision::Int4)) {
        checks.push(Check::new(
            "INT4 uses ≈100% of the GPU (§3.3)",
            b4.gpu_util > 0.85,
            format!("{:.0}%", b4.gpu_util * 100.0),
        ));
    }

    ExperimentResult {
        id: "fig3",
        title: "Fig 3 / Fig 11 — quantization impact (bs=32, sl=96, MaxN)".to_string(),
        tables,
        checks,
        csv: vec![("quant_perf".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_grid_reproduces() {
        let r = run(Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
    }
}
