//! Fig 2/8/9 + Tables 6/7: the sequence-length sweep (sl = 128..1024,
//! bs = 32), including Phi-2's OoM cells.

use crate::batch_sweep::serving_precision;
use crate::paper::{seq_sweep_truth, SEQ_LENS};
use crate::report::{vs_cell, Check, ExperimentResult, Table};
use edgellm_core::{Dataset, Engine, Protocol, RunConfig, RunError, SequenceSpec};
use edgellm_models::Llm;
use rayon::prelude::*;

/// Outcome of one cell: metrics or OoM.
type CellResult = Result<edgellm_core::RunMetrics, RunError>;

/// Run the sequence sweep on one dataset.
pub fn run(dataset: Dataset, protocol: Protocol) -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let truth = seq_sweep_truth(dataset);

    let results: Vec<(Llm, Vec<CellResult>)> = Llm::ALL
        .par_iter()
        .map(|&llm| {
            let cells = SEQ_LENS
                .par_iter()
                .map(|&sl| {
                    let cfg = RunConfig::new(llm, serving_precision(llm))
                        .batch_size(32)
                        .sequence(SequenceSpec::paper_sweep(sl))
                        .dataset(dataset);
                    protocol.run(&engine, &cfg)
                })
                .collect();
            (llm, cells)
        })
        .collect();

    let mut tables = Vec::new();
    let mut checks = Vec::new();
    let mut csv = Table::new(vec![
        "model",
        "seqlen",
        "latency_s",
        "paper_latency_s",
        "tp_tok_s",
        "paper_tp",
        "ram_gb",
        "paper_ram_gb",
    ]);

    for ((llm, cells), tr) in results.iter().zip(truth.iter()) {
        assert_eq!(*llm, tr.llm);
        let mut t =
            Table::new(vec!["seqlen", "RAM GB (paper)", "latency s (paper)", "tok/s (paper)"]);
        for (i, &sl) in SEQ_LENS.iter().enumerate() {
            let (lat, tp, ram) = match &cells[i] {
                Ok(m) => (Some(m.latency_s), Some(m.throughput_tok_s), Some(m.peak_mem_gb)),
                Err(_) => (None, None, None),
            };
            t.row(vec![
                sl.to_string(),
                vs_cell(ram, tr.ram_gb[i], 2),
                vs_cell(lat, tr.latency_s[i], 2),
                vs_cell(tp, tr.throughput[i], 1),
            ]);
            let f = |v: Option<f64>| v.map_or("OOM".to_string(), |x| format!("{x:.2}"));
            csv.row(vec![
                llm.short_name().to_string(),
                sl.to_string(),
                f(lat),
                f(tr.latency_s[i]),
                f(tp),
                f(tr.throughput[i]),
                f(ram),
                f(tr.ram_gb[i]),
            ]);
            // OoM pattern must match the paper cell-for-cell.
            checks.push(Check::new(
                format!("{} sl={sl}: OoM status matches paper", llm.short_name()),
                lat.is_none() == tr.latency_s[i].is_none(),
                format!(
                    "ours {} vs paper {}",
                    if lat.is_none() { "OOM" } else { "runs" },
                    if tr.latency_s[i].is_none() { "OOM" } else { "runs" }
                ),
            ));
        }
        tables.push(format!("{} ({}):\n{}", llm.short_name(), dataset.label(), t.render()));

        // Throughput decreases with sequence length where the model runs.
        let tps: Vec<f64> =
            cells.iter().filter_map(|c| c.as_ref().ok().map(|m| m.throughput_tok_s)).collect();
        if tps.len() >= 2 {
            checks.push(Check::new(
                format!("{}: throughput decreases with sequence length (Fig 2)", llm.short_name()),
                tps.windows(2).all(|w| w[1] < w[0]),
                format!("{:.0} → {:.0} tok/s", tps[0], tps[tps.len() - 1]),
            ));
        }
        // Latency grows superlinearly (decode is memory-bound and context
        // work accumulates): quadrupling sl must more than quadruple time.
        let lats: Vec<f64> =
            cells.iter().filter_map(|c| c.as_ref().ok().map(|m| m.latency_s)).collect();
        if lats.len() == 4 {
            checks.push(Check::new(
                format!("{}: latency superlinear in sequence length (§3.2)", llm.short_name()),
                lats[3] / lats[0] > (SEQ_LENS[3] / SEQ_LENS[0]) as f64,
                format!("×{:.1} for ×8 tokens", lats[3] / lats[0]),
            ));
        }
    }

    // ASCII rendition of Fig 2: throughput vs sequence length.
    let tp_series: Vec<crate::figviz::Series> = results
        .iter()
        .map(|(llm, cells)| {
            crate::figviz::Series::new(
                llm.short_name().to_lowercase(),
                SEQ_LENS
                    .iter()
                    .zip(cells)
                    .filter_map(|(&sl, c)| c.as_ref().ok().map(|m| (sl as f64, m.throughput_tok_s)))
                    .collect(),
            )
        })
        .collect();
    tables.push(crate::figviz::chart(
        &format!("Fig 2 shape — throughput (tok/s) vs sequence length, {}", dataset.label()),
        &tp_series,
        64,
        14,
        true,
    ));

    // Headline §3.2 numbers for Llama: 271 → 107 tok/s, 15 s → 305 s.
    let llama = &results.iter().find(|(l, _)| *l == Llm::Llama31_8b).expect("llama").1;
    if let (Ok(first), Ok(last)) = (&llama[0], &llama[3]) {
        let tp_drop = first.throughput_tok_s / last.throughput_tok_s;
        checks.push(Check::new(
            "Llama throughput drops ≈2.5× from sl=128 to 1024 (§3.2: 271→107)",
            (1.8..3.5).contains(&tp_drop),
            format!(
                "{:.0} → {:.0} tok/s (×{tp_drop:.1})",
                first.throughput_tok_s, last.throughput_tok_s
            ),
        ));
    }

    let (id, fig) = match dataset {
        Dataset::LongBench => ("fig2", "Fig 2/8 + Table 6"),
        Dataset::WikiText2 => ("fig9", "Fig 9 + Table 7"),
    };
    ExperimentResult {
        id,
        title: format!("{fig} — sequence-length sweep on {}", dataset.label()),
        tables,
        checks,
        csv: vec![("seqlen_sweep".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longbench_seqlen_sweep_reproduces() {
        let r = run(Dataset::LongBench, Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
        assert_eq!(r.id, "fig2");
    }

    #[test]
    fn wikitext_seqlen_sweep_reproduces() {
        let r = run(Dataset::WikiText2, Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
    }
}
