//! `ext-prefix`: paged KV cache with radix-tree prefix sharing — TTFT
//! and J/token versus the shared-system-prompt ratio.
//!
//! Agent and chat deployments prepend one system prompt to most
//! requests; a radix prefix cache serves those tokens from blocks
//! already resident in the KV pool, skipping their prefill compute and
//! energy entirely. This driver sweeps the fraction of the trace that
//! carries a shared system prompt and measures how mean TTFT and serving
//! energy per token fall as the cache hit rate rises, against the same
//! schedule served with the cache off.

use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::serve::{record_serve_run, ServeConfig};
use edgellm_core::{Request, RunConfig, ServeSim};
use edgellm_hw::DeviceSpec;
use edgellm_models::{Llm, Precision};
use std::collections::HashMap;

/// Requests per sweep point.
const N_REQS: usize = 40;
/// Total prompt length of every request (tokens).
const PROMPT_TOKENS: u64 = 256;
/// Shared system prompt length (tokens) — the cacheable prefix.
const SYSTEM_TOKENS: u64 = 192;
/// Output length per request (tokens).
const OUTPUT_TOKENS: u64 = 32;
/// Arrival gap (s): just under the cold per-request service time, so
/// the device stays busy. Skipped prefill then shortens the busy
/// makespan directly — visible in J/token, not just TTFT — and queueing
/// amplifies the TTFT benefit the way a loaded deployment would see it.
const GAP_S: f64 = 1.0;
/// Shared-system-prompt ratios swept (percent of the trace).
const RATIOS: [u32; 5] = [0, 25, 50, 75, 100];

/// One sweep point's scorecard.
struct PrefixRun {
    mean_ttft_s: f64,
    p99_ttft_s: f64,
    energy_j: f64,
    energy_per_token_j: f64,
    hit_rate: f64,
    completed: usize,
}

/// Whether request `i` carries the shared system prompt at ratio `pct`
/// (interleaved, so sharing is spread across the trace rather than
/// front-loaded): exactly `pct`% of every four consecutive requests.
fn shares(i: usize, pct: u32) -> bool {
    ((i % 4) as u32) < pct / 25
}

fn requests() -> Vec<Request> {
    (0..N_REQS as u64)
        .map(|id| Request {
            id,
            arrival_s: id as f64 * GAP_S,
            input_tokens: PROMPT_TOKENS,
            output_tokens: OUTPUT_TOKENS,
        })
        .collect()
}

/// Serve the trace at one sweep point. `cached` toggles the radix
/// prefix cache; `export` additionally renders the run onto the process
/// trace sink (cache-occupancy counter track included).
fn serve(pct: u32, cached: bool, export: bool) -> PrefixRun {
    let dev = DeviceSpec::orin_agx_64gb();
    let run_cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let mut cfg = ServeConfig::chunked(16);
    if cached {
        cfg = cfg.with_prefix_cache();
    }
    let system: Vec<u32> = (0..SYSTEM_TOKENS as u32).map(|i| 500_000 + i).collect();
    let reqs = requests();
    let prompts: HashMap<u64, Vec<u32>> = reqs
        .iter()
        .filter(|r| shares(r.id as usize, pct))
        .map(|r| (r.id, system.clone()))
        .collect();
    let mut sim = ServeSim::new_with_prompts(cfg, &dev, &run_cfg, &reqs, &prompts)
        .expect("Llama FP16 fits the 64 GB AGX");
    while let Some(t) = sim.next_event_s() {
        sim.step(t).expect("stock mode validates");
    }
    if export {
        edgellm_trace::sink::with(|out| {
            let pid = out.next_pid();
            record_serve_run(
                out,
                pid,
                &format!("prefix-{pct}pct"),
                sim.trace(),
                sim.rail_trace(),
                sim.cache_occupancy_log(),
                sim.preemption_events(),
            );
        });
    }
    let r = sim.report();
    let audit = sim.audit();
    PrefixRun {
        mean_ttft_s: r.mean_ttft_s,
        p99_ttft_s: r.p99_ttft_s,
        energy_j: r.energy_j,
        energy_per_token_j: r.energy_j / sim.served_output_tokens().max(1) as f64,
        hit_rate: audit.kv_cache_hit_tokens as f64 / (N_REQS as u64 * PROMPT_TOKENS) as f64,
        completed: r.requests,
    }
}

/// Run the prefix-sharing extension experiment.
pub fn run() -> ExperimentResult {
    let mut t = Table::new(vec![
        "shared %",
        "cache",
        "hit rate",
        "mean TTFT s",
        "p99 TTFT s",
        "energy J",
        "J/tok",
    ]);
    let mut csv = Table::new(vec![
        "shared_pct",
        "cached",
        "hit_rate",
        "mean_ttft_s",
        "p99_ttft_s",
        "energy_j",
        "energy_per_token_j",
    ]);
    let mut checks = Vec::new();

    // The no-cache baseline ignores prompts entirely, so one run covers
    // every ratio.
    let base = serve(50, false, false);
    let warm: Vec<(u32, PrefixRun)> = RATIOS
        .iter()
        .map(|&pct| (pct, serve(pct, true, edgellm_trace::sink::enabled() && pct == 50)))
        .collect();
    let mut render = |pct: u32, label: &str, r: &PrefixRun| {
        t.row(vec![
            pct.to_string(),
            label.to_string(),
            format!("{:.0}%", r.hit_rate * 100.0),
            format!("{:.3}", r.mean_ttft_s),
            format!("{:.3}", r.p99_ttft_s),
            format!("{:.0}", r.energy_j),
            format!("{:.3}", r.energy_per_token_j),
        ]);
        csv.row(vec![
            pct.to_string(),
            label.to_string(),
            format!("{:.4}", r.hit_rate),
            format!("{:.4}", r.mean_ttft_s),
            format!("{:.4}", r.p99_ttft_s),
            format!("{:.1}", r.energy_j),
            format!("{:.4}", r.energy_per_token_j),
        ]);
    };
    render(50, "off", &base);
    for (pct, r) in &warm {
        render(*pct, "on", r);
    }

    checks.push(Check::new(
        "every configuration completes the whole trace",
        base.completed == N_REQS && warm.iter().all(|(_, r)| r.completed == N_REQS),
        format!("{} requests × {} sweep points", N_REQS, warm.len() + 1),
    ));
    checks.push(Check::new(
        "cache hit rate rises monotonically with the shared-prompt ratio",
        warm.windows(2).all(|w| w[1].1.hit_rate >= w[0].1.hit_rate)
            && warm.last().map(|(_, r)| r.hit_rate > 0.5).unwrap_or(false),
        warm.iter()
            .map(|(p, r)| format!("{p}%→{:.0}%", r.hit_rate * 100.0))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    checks.push(Check::new(
        "mean TTFT drops monotonically as the hit rate rises",
        warm.windows(2).all(|w| w[1].1.mean_ttft_s <= w[0].1.mean_ttft_s + 1e-9),
        warm.iter().map(|(_, r)| format!("{:.3}s", r.mean_ttft_s)).collect::<Vec<_>>().join(" ≥ "),
    ));
    checks.push(Check::new(
        "J/token drops monotonically as the hit rate rises",
        warm.windows(2).all(|w| w[1].1.energy_per_token_j <= w[0].1.energy_per_token_j + 1e-9),
        warm.iter()
            .map(|(_, r)| format!("{:.3}", r.energy_per_token_j))
            .collect::<Vec<_>>()
            .join(" ≥ "),
    ));
    let p50 = &warm.iter().find(|(p, _)| *p == 50).expect("50% point swept").1;
    let ttft_cut = 1.0 - p50.mean_ttft_s / base.mean_ttft_s;
    checks.push(Check::new(
        "50% shared-prompt ratio cuts mean TTFT ≥30% vs the no-cache baseline",
        ttft_cut >= 0.30,
        format!("{:.3}s → {:.3}s (−{:.0}%)", base.mean_ttft_s, p50.mean_ttft_s, ttft_cut * 100.0),
    ));
    checks.push(Check::new(
        "50% shared-prompt ratio serves measurably cheaper J/token than no-cache",
        p50.energy_per_token_j < base.energy_per_token_j * 0.995,
        format!("{:.3} vs {:.3} J/tok", p50.energy_per_token_j, base.energy_per_token_j),
    ));
    checks.push(Check::new(
        "a 0% shared ratio with the cache on costs nothing vs cache-off",
        (warm[0].1.mean_ttft_s - base.mean_ttft_s).abs() < 1e-9
            && (warm[0].1.energy_j - base.energy_j).abs() < 1e-6,
        format!("{:.3}s vs {:.3}s TTFT", warm[0].1.mean_ttft_s, base.mean_ttft_s),
    ));

    ExperimentResult {
        id: "ext-prefix",
        title: "Extension — paged KV + radix prefix sharing: TTFT and J/token vs shared-prompt \
                ratio"
            .to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("prefix_sharing".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_experiment_passes() {
        let r = run();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn share_selection_is_exact_per_window() {
        for pct in RATIOS {
            let selected = (0..N_REQS).filter(|&i| shares(i, pct)).count();
            assert_eq!(selected, N_REQS * pct as usize / 100, "ratio {pct}%");
        }
    }
}
