//! Table 1: peak weight memory of each model at each precision.

use crate::paper::TABLE1;
use crate::report::{vs, Check, ExperimentResult, Table};
use edgellm_models::footprint::table1;
use edgellm_models::Precision;

/// Regenerate Table 1 for a device capacity (GB) and compare to the paper.
pub fn run(capacity_gb: f64) -> ExperimentResult {
    let rows = table1(capacity_gb);
    let mut t =
        Table::new(vec!["Model", "#Params", "FP32 GB", "FP16 GB", "INT8 GB", "INT4 GB", "loads"]);
    let mut checks = Vec::new();
    let mut csv = Table::new(vec!["model", "precision", "ours_gb", "paper_gb", "loadable"]);

    for (row, (llm, paper_gb, paper_loads)) in rows.iter().zip(TABLE1.iter()) {
        assert_eq!(row.llm, *llm);
        let loads: Vec<&str> =
            row.footprints.iter().map(|f| if f.loadable { "y" } else { "n" }).collect();
        t.row(vec![
            row.llm.short_name().to_string(),
            format!("{:.1}B", row.params_b),
            vs(row.footprints[0].gb, Some(paper_gb[0]), 1),
            vs(row.footprints[1].gb, Some(paper_gb[1]), 1),
            vs(row.footprints[2].gb, Some(paper_gb[2]), 1),
            vs(row.footprints[3].gb, Some(paper_gb[3]), 1),
            loads.join(""),
        ]);
        for (i, f) in row.footprints.iter().enumerate() {
            csv.row(vec![
                row.llm.short_name().to_string(),
                f.precision.label().to_string(),
                format!("{:.2}", f.gb),
                format!("{:.2}", paper_gb[i]),
                f.loadable.to_string(),
            ]);
            // The paper's DeepSeek FP32/FP16 estimates contradict its own
            // 32.8B parameter count (124/62 GB = 31B×4/×2); we reproduce
            // from the architecture, so allow 7% there, 4% elsewhere.
            let tol = if paper_gb[i] > 60.0 { 0.07 } else { 0.05 };
            let rel = (f.gb - paper_gb[i]).abs() / paper_gb[i];
            checks.push(Check::new(
                format!("{} {} ≈ {:.1} GB", row.llm.short_name(), f.precision, paper_gb[i]),
                rel < tol,
                format!("ours {:.1} GB (Δ {:.1}%)", f.gb, rel * 100.0),
            ));
            checks.push(Check::new(
                format!("{} {} loadability matches paper", row.llm.short_name(), f.precision),
                f.loadable == paper_loads[i],
                format!("ours {} vs paper {}", f.loadable, paper_loads[i]),
            ));
        }
    }
    // Headline claim: INT8 lets DeepSeek-R1-32B run on the Orin AGX.
    let deepq_int8 =
        rows[3].footprints.iter().find(|f| f.precision == Precision::Int8).expect("int8 column");
    checks.push(Check::new(
        "INT8 enables DeepSeek-R1-32B on the 64 GB Orin (abstract)",
        deepq_int8.loadable,
        format!("{:.1} GB loadable={}", deepq_int8.gb, deepq_int8.loadable),
    ));

    ExperimentResult {
        id: "tab1",
        title: format!("Table 1 — model weight memory on a {capacity_gb:.0} GB device"),
        tables: vec![t.render()],
        checks,
        csv: vec![("model_memory".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces() {
        let r = run(64.0);
        assert!(r.all_pass(), "{}", r.render());
        assert_eq!(r.csv.len(), 1);
        assert!(r.tables[0].contains("DeepQ"));
    }
}
