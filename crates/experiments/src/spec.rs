//! `ext-spec`: speculative draft-and-verify decoding — decode tokens/s
//! and J/token across the k × α plane.
//!
//! Autoregressive decode on an edge accelerator is bandwidth-bound: every
//! token streams the full weight set for one matmul row. Draft-and-verify
//! replaces k such streams with k cheap drafts plus one batched verify
//! pass that scores all k positions against a single weight stream, so
//! at acceptance rate α each iteration commits E = (1−α^{k+1})/(1−α)
//! tokens instead of 1. This driver sweeps draft depth k and acceptance
//! rate α on the Phi-2 preset and measures decode throughput and serving
//! energy per token against the identical schedule served without
//! speculation, plus the adaptive-k controller as its own column.

use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::serve::{record_serve_run, ServeConfig};
use edgellm_core::{Request, RunConfig, ServeSim};
use edgellm_hw::DeviceSpec;
use edgellm_models::{Llm, Precision};

/// Requests per sweep point.
const N_REQS: usize = 24;
/// Prompt length (tokens) — short, so the runs are decode-dominated the
/// way chat serving is.
const PROMPT_TOKENS: u64 = 64;
/// Output length per request (tokens).
const OUTPUT_TOKENS: u64 = 256;
/// Arrival gap (s): everything is queued up front so makespan measures
/// pure decode throughput.
const GAP_S: f64 = 0.0;
/// Single-stream decode — the edge chat regime the paper measures.
/// Batch-1 decode streams the full weight set per token, so it is the
/// bandwidth-bound floor speculation exists to beat; at higher
/// concurrency continuous batching already amortizes the weight stream
/// across sequences and the headroom shrinks (the adaptive controller
/// covers that regime in `edgellm-check`'s fuzzed scenarios).
const MAX_BATCH: usize = 1;
/// Draft depths swept.
const KS: [u64; 4] = [1, 2, 4, 8];
/// Acceptance rates swept.
const ALPHAS: [f64; 4] = [0.3, 0.5, 0.7, 0.9];

/// One sweep point's scorecard.
struct SpecRun {
    decode_tok_s: f64,
    energy_per_token_j: f64,
    accept_rate: f64,
    drafted: u64,
    completed: usize,
    served_tokens: u64,
}

fn requests() -> Vec<Request> {
    (0..N_REQS as u64)
        .map(|id| Request {
            id,
            arrival_s: id as f64 * GAP_S,
            input_tokens: PROMPT_TOKENS,
            output_tokens: OUTPUT_TOKENS,
        })
        .collect()
}

/// Serve the trace at one sweep point. `spec` is `(k, α, adaptive)`;
/// `None` serves the plain-decode baseline. `export` additionally
/// renders the run onto the process trace sink.
fn serve(spec: Option<(u64, f64, bool)>, export: bool) -> SpecRun {
    let dev = DeviceSpec::orin_agx_64gb();
    let run_cfg = RunConfig::new(Llm::Phi2, Precision::Fp16);
    let mut cfg = ServeConfig::chunked(MAX_BATCH);
    if let Some((k, alpha, adaptive)) = spec {
        cfg = if adaptive {
            cfg.with_adaptive_speculation(k, alpha)
        } else {
            cfg.with_speculation(k, alpha)
        };
    }
    let reqs = requests();
    let mut sim = ServeSim::new(cfg, &dev, &run_cfg, &reqs).expect("Phi-2 FP16 fits the AGX");
    while let Some(t) = sim.next_event_s() {
        sim.step(t).expect("stock mode validates");
    }
    if export {
        edgellm_trace::sink::with(|out| {
            let pid = out.next_pid();
            let label = match spec {
                Some((k, a, true)) => format!("spec-adaptive-k{k}-a{a:.1}"),
                Some((k, a, false)) => format!("spec-k{k}-a{a:.1}"),
                None => "spec-off".to_string(),
            };
            record_serve_run(
                out,
                pid,
                &label,
                sim.trace(),
                sim.rail_trace(),
                sim.cache_occupancy_log(),
                sim.preemption_events(),
            );
        });
    }
    let r = sim.report();
    let audit = sim.audit();
    SpecRun {
        decode_tok_s: r.output_tok_s,
        energy_per_token_j: r.energy_j / sim.served_output_tokens().max(1) as f64,
        accept_rate: audit.spec_accepted as f64 / audit.spec_drafted.max(1) as f64,
        drafted: audit.spec_drafted,
        completed: r.requests,
        served_tokens: sim.served_output_tokens(),
    }
}

/// Run the speculative-decoding extension experiment.
pub fn run() -> ExperimentResult {
    let mut t = Table::new(vec!["k", "α", "mode", "accept %", "tok/s", "×base", "J/tok"]);
    let mut csv = Table::new(vec![
        "k",
        "alpha",
        "mode",
        "accept_rate",
        "decode_tok_s",
        "speedup",
        "energy_per_token_j",
    ]);
    let mut checks = Vec::new();

    let base = serve(None, false);
    let export = edgellm_trace::sink::enabled();
    let mut render = |k: &str, a: &str, mode: &str, r: &SpecRun| {
        let speedup = r.decode_tok_s / base.decode_tok_s;
        t.row(vec![
            k.to_string(),
            a.to_string(),
            mode.to_string(),
            format!("{:.0}%", r.accept_rate * 100.0),
            format!("{:.1}", r.decode_tok_s),
            format!("{speedup:.2}×"),
            format!("{:.3}", r.energy_per_token_j),
        ]);
        csv.row(vec![
            k.to_string(),
            a.to_string(),
            mode.to_string(),
            format!("{:.4}", r.accept_rate),
            format!("{:.2}", r.decode_tok_s),
            format!("{speedup:.4}"),
            format!("{:.4}", r.energy_per_token_j),
        ]);
    };
    render("-", "-", "off", &base);

    // Fixed-k plane, plus the adaptive controller at each α with the
    // deepest budget (it sheds depth on its own when α is poor).
    let mut grid: Vec<((u64, f64), SpecRun)> = Vec::new();
    for &k in &KS {
        for &alpha in &ALPHAS {
            let r = serve(Some((k, alpha, false)), export && k == 4 && alpha == 0.9);
            render(&k.to_string(), &format!("{alpha:.1}"), "fixed", &r);
            grid.push(((k, alpha), r));
        }
    }
    let adaptive: Vec<(f64, SpecRun)> =
        ALPHAS.iter().map(|&alpha| (alpha, serve(Some((8, alpha, true)), false))).collect();
    for (alpha, r) in &adaptive {
        render("≤8", &format!("{alpha:.1}"), "adaptive", r);
    }

    let point = |k: u64, alpha: f64| -> &SpecRun {
        &grid.iter().find(|((gk, ga), _)| *gk == k && *ga == alpha).expect("point swept").1
    };

    checks.push(Check::new(
        "every configuration serves the identical trace to completion",
        base.completed == N_REQS
            && grid
                .iter()
                .all(|(_, r)| r.completed == N_REQS && r.served_tokens == base.served_tokens)
            && adaptive.iter().all(|(_, r)| r.completed == N_REQS),
        format!("{} requests × {} sweep points", N_REQS, grid.len() + adaptive.len() + 1),
    ));
    // Acceptance stops at the first rejected draft, so the expected
    // accepted fraction of drafted tokens is the mean geometric prefix
    // α(1−α^k)/((1−α)k), not α itself.
    let expect_accept = |k: u64, a: f64| a * (1.0 - a.powi(k as i32)) / ((1.0 - a) * k as f64);
    checks.push(Check::new(
        "measured acceptance tracks the geometric-prefix expectation (±0.05 at k=4)",
        ALPHAS.iter().all(|&a| (point(4, a).accept_rate - expect_accept(4, a)).abs() < 0.05),
        ALPHAS
            .iter()
            .map(|&a| {
                format!("α={a:.1}: {:.2} vs E={:.2}", point(4, a).accept_rate, expect_accept(4, a))
            })
            .collect::<Vec<_>>()
            .join(", "),
    ));
    checks.push(Check::new(
        "throughput rises monotonically with α at every fixed k",
        KS.iter().all(|&k| {
            ALPHAS
                .windows(2)
                .all(|w| point(k, w[1]).decode_tok_s >= point(k, w[0]).decode_tok_s - 1e-9)
        }),
        KS.iter()
            .map(|&k| {
                format!(
                    "k={k}: {:.0}→{:.0} tok/s",
                    point(k, 0.3).decode_tok_s,
                    point(k, 0.9).decode_tok_s
                )
            })
            .collect::<Vec<_>>()
            .join("; "),
    ));
    let headline = point(4, 0.7);
    checks.push(Check::new(
        "k=4 at α=0.7 decodes ≥1.5× faster than plain greedy",
        headline.decode_tok_s >= 1.5 * base.decode_tok_s,
        format!(
            "{:.1} vs {:.1} tok/s ({:.2}×)",
            headline.decode_tok_s,
            base.decode_tok_s,
            headline.decode_tok_s / base.decode_tok_s
        ),
    ));
    checks.push(Check::new(
        "k=4 at α≥0.7 serves cheaper J/token than plain greedy",
        headline.energy_per_token_j < base.energy_per_token_j
            && point(4, 0.9).energy_per_token_j < base.energy_per_token_j,
        format!(
            "{:.3}/{:.3} vs {:.3} J/tok",
            headline.energy_per_token_j,
            point(4, 0.9).energy_per_token_j,
            base.energy_per_token_j
        ),
    ));
    checks.push(Check::new(
        "the adaptive controller at α=0.9 is within 10% of the best fixed k",
        {
            let best = ALPHAS
                .last()
                .map(|_| KS.iter().map(|&k| point(k, 0.9).decode_tok_s).fold(f64::MIN, f64::max))
                .unwrap();
            let (_, ad) = adaptive.iter().find(|(a, _)| *a == 0.9).expect("α=0.9 swept");
            ad.decode_tok_s >= 0.9 * best
        },
        {
            let best = KS.iter().map(|&k| point(k, 0.9).decode_tok_s).fold(f64::MIN, f64::max);
            let (_, ad) = adaptive.iter().find(|(a, _)| *a == 0.9).expect("α=0.9 swept");
            format!("adaptive {:.1} vs best fixed {:.1} tok/s", ad.decode_tok_s, best)
        },
    ));
    checks.push(Check::new(
        "speculation drafted real work at every armed point",
        grid.iter().all(|(_, r)| r.drafted > 0) && adaptive.iter().all(|(_, r)| r.drafted > 0),
        format!(
            "min drafted {} tokens",
            grid.iter()
                .map(|(_, r)| r.drafted)
                .chain(adaptive.iter().map(|(_, r)| r.drafted))
                .min()
                .unwrap_or(0)
        ),
    ));

    ExperimentResult {
        id: "ext-spec",
        title: "Extension — speculative draft-and-verify decode: tokens/s and J/token across \
                k × α (Phi-2)"
            .to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("spec_decode".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_experiment_passes() {
        let r = run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
