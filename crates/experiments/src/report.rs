//! Experiment reporting: aligned text tables, shape checks, CSV emission.

use std::fmt::Write as _;

/// A pass/fail shape check against a paper claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What is being checked (quotes or paraphrases the paper claim).
    pub claim: String,
    /// Whether our reproduction satisfies it.
    pub pass: bool,
    /// Observed values supporting the verdict.
    pub detail: String,
}

impl Check {
    /// Build a check.
    pub fn new(claim: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        Check { claim: claim.into(), pass, detail: detail.into() }
    }
}

/// The output of one experiment driver.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id (e.g. "fig1", "tab3").
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Rendered comparison tables.
    pub tables: Vec<String>,
    /// Shape checks against the paper.
    pub checks: Vec<Check>,
    /// CSV blocks: (file stem, contents).
    pub csv: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Whether every shape check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render the full report to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for t in &self.tables {
            let _ = writeln!(out, "\n{t}");
        }
        if !self.checks.is_empty() {
            let _ = writeln!(out, "\nShape checks vs paper:");
            for c in &self.checks {
                let mark = if c.pass { "PASS" } else { "FAIL" };
                let _ = writeln!(out, "  [{mark}] {} — {}", c.claim, c.detail);
            }
        }
        out
    }

    /// Serialize the result (id, title, checks, CSV blocks) to JSON for
    /// machine-readable diffing against the paper ground truth.
    ///
    /// Hand-rolled pretty printer (2-space indent, `serde_json` layout)
    /// because the offline build carries no serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"all_pass\": {},", self.all_pass());
        if self.checks.is_empty() {
            out.push_str("  \"checks\": [],\n");
        } else {
            out.push_str("  \"checks\": [\n");
            for (i, c) in self.checks.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"claim\": {},", json_str(&c.claim));
                let _ = writeln!(out, "      \"pass\": {},", c.pass);
                let _ = writeln!(out, "      \"detail\": {}", json_str(&c.detail));
                out.push_str(if i + 1 < self.checks.len() { "    },\n" } else { "    }\n" });
            }
            out.push_str("  ],\n");
        }
        if self.csv.is_empty() {
            out.push_str("  \"csv\": []\n");
        } else {
            out.push_str("  \"csv\": [\n");
            for (i, (stem, contents)) in self.csv.iter().enumerate() {
                let _ = write!(out, "    [{}, {}]", json_str(stem), json_str(contents));
                out.push_str(if i + 1 < self.csv.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }

    /// Write the JSON export into `dir` (created if needed).
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let p = dir.join(format!("{}.json", self.id));
        std::fs::write(&p, self.to_json())?;
        Ok(p)
    }

    /// Write the CSV blocks into `dir` (created if needed).
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (stem, contents) in &self.csv {
            let p = dir.join(format!("{}_{stem}.csv", self.id));
            std::fs::write(&p, contents)?;
            paths.push(p);
        }
        Ok(paths)
    }
}

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a header row.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (cells padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(r, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(out, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Escape and quote a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a simulated-vs-paper cell as "sim (paper)".
pub fn vs(sim: f64, paper: Option<f64>, decimals: usize) -> String {
    match paper {
        Some(p) => format!("{sim:.decimals$} ({p:.decimals$})"),
        None => format!("{sim:.decimals$} (—)"),
    }
}

/// Format an OoM-able simulated cell against the paper's.
pub fn vs_cell(sim: Option<f64>, paper: Option<f64>, decimals: usize) -> String {
    match (sim, paper) {
        (Some(s), Some(p)) => format!("{s:.decimals$} ({p:.decimals$})"),
        (Some(s), None) => format!("{s:.decimals$} (OOM)"),
        (None, Some(p)) => format!("OOM ({p:.decimals$})"),
        (None, None) => "OOM (OOM)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["model", "latency"]);
        t.row(vec!["Phi2", "3.73"]);
        t.row(vec!["Llama3-long-name", "6.37"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "latency" column starts at the same offset.
        let off = lines[0].find("latency").unwrap();
        assert_eq!(lines[2].find("3.73").unwrap(), off);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",z"));
    }

    #[test]
    fn vs_cell_handles_oom() {
        assert_eq!(vs_cell(Some(1.5), None, 1), "1.5 (OOM)");
        assert_eq!(vs_cell(None, Some(2.0), 1), "OOM (2.0)");
        assert_eq!(vs_cell(None, None, 1), "OOM (OOM)");
    }

    #[test]
    fn result_render_includes_checks() {
        let r = ExperimentResult {
            id: "fig1",
            title: "demo".into(),
            tables: vec!["t".into()],
            checks: vec![Check::new("claim", true, "ok")],
            csv: vec![],
        };
        let s = r.render();
        assert!(s.contains("[PASS] claim"));
        assert!(r.all_pass());
    }

    #[test]
    fn json_export_roundtrips_key_fields() {
        let r = ExperimentResult {
            id: "tab1",
            title: "demo".into(),
            tables: vec![],
            checks: vec![Check::new("c", false, "d")],
            csv: vec![("x".into(), "a,b\n".into())],
        };
        let j = r.to_json();
        assert!(j.contains("\"id\": \"tab1\""));
        assert!(j.contains("\"all_pass\": false"));
        assert!(j.contains("\"claim\": \"c\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }
}
