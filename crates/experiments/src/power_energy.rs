//! Fig 4 (Llama) / Fig 10 (all models): power load and energy use while
//! varying batch size × quantization (MaxN, sl = 96).

use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::{Engine, Protocol, RunConfig};
use edgellm_models::{Llm, Precision};
use rayon::prelude::*;

/// The precisions Fig 4/10 sweep.
const PRECISIONS: [Precision; 3] = [Precision::Fp16, Precision::Int8, Precision::Int4];

/// Batch sizes on the Fig 4/10 x-axis.
const BATCHES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Median over a non-empty slice.
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Run the sweep for the given models (Fig 4 = Llama only, Fig 10 = all).
pub fn run(models: &[Llm], protocol: Protocol) -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    // (model, precision) → per-batch (power, energy); None where OoM.
    type Series = Vec<Option<(f64, f64)>>;
    let grid: Vec<(Llm, Vec<(Precision, Series)>)> = models
        .par_iter()
        .map(|&llm| {
            let per_prec = PRECISIONS
                .iter()
                .map(|&prec| {
                    let series = BATCHES
                        .par_iter()
                        .map(|&bs| {
                            protocol
                                .run(&engine, &RunConfig::new(llm, prec).batch_size(bs))
                                .ok()
                                .map(|m| (m.median_power_w, m.energy_j))
                        })
                        .collect();
                    (prec, series)
                })
                .collect();
            (llm, per_prec)
        })
        .collect();

    let mut tables = Vec::new();
    let mut checks = Vec::new();
    let mut csv = Table::new(vec!["model", "precision", "batch", "power_w", "energy_j"]);

    for (llm, per_prec) in &grid {
        let mut t =
            Table::new(vec!["batch", "FP16 W", "FP16 J", "INT8 W", "INT8 J", "INT4 W", "INT4 J"]);
        for (i, &bs) in BATCHES.iter().enumerate() {
            let cell = |p: usize| -> (String, String) {
                match per_prec[p].1[i] {
                    Some((w, j)) => (format!("{w:.1}"), format!("{j:.0}")),
                    None => ("OOM".into(), "OOM".into()),
                }
            };
            let (w16, j16) = cell(0);
            let (w8, j8) = cell(1);
            let (w4, j4) = cell(2);
            t.row(vec![bs.to_string(), w16, j16, w8, j8, w4, j4]);
            for (p, &prec) in PRECISIONS.iter().enumerate() {
                if let Some((w, j)) = per_prec[p].1[i] {
                    csv.row(vec![
                        llm.short_name().to_string(),
                        prec.label().to_string(),
                        bs.to_string(),
                        format!("{w:.2}"),
                        format!("{j:.1}"),
                    ]);
                }
            }
        }
        tables.push(format!("{}:\n{}", llm.short_name(), t.render()));

        // Per-model §3.3 / appendix A.3 claims (where the cells exist).
        let series =
            |p: usize| -> Vec<(f64, f64)> { per_prec[p].1.iter().flatten().copied().collect() };
        let (s16, s8, s4) = (series(0), series(1), series(2));
        if !s16.is_empty() && !s8.is_empty() {
            let med16 = median(s16.iter().map(|x| x.0).collect());
            let med8 = median(s8.iter().map(|x| x.0).collect());
            let red = 1.0 - med8 / med16;
            checks.push(Check::new(
                format!(
                    "{}: INT8 draws markedly less power than FP16 (A.3: ≈23–50%)",
                    llm.short_name()
                ),
                (0.05..0.6).contains(&red),
                format!("median −{:.0}%", red * 100.0),
            ));
        }
        if !s8.is_empty() && !s4.is_empty() {
            let med8 = median(s8.iter().map(|x| x.0).collect());
            let med4 = median(s4.iter().map(|x| x.0).collect());
            checks.push(Check::new(
                format!("{}: INT8 draws less power than INT4 (A.3)", llm.short_name()),
                med8 < med4,
                format!("{med8:.1} W vs {med4:.1} W"),
            ));
            let e8 = median(s8.iter().map(|x| x.1).collect());
            let e4 = median(s4.iter().map(|x| x.1).collect());
            checks.push(Check::new(
                format!(
                    "{}: INT4 energy well above INT8 (A.3: 55–78% savings for INT8)",
                    llm.short_name()
                ),
                e4 > 1.3 * e8,
                format!("{e4:.0} J vs {e8:.0} J"),
            ));
        }
        if !s16.is_empty() && !s4.is_empty() {
            let e16 = median(s16.iter().map(|x| x.1).collect());
            let e4 = median(s4.iter().map(|x| x.1).collect());
            checks.push(Check::new(
                format!(
                    "{}: INT4 energy well above FP16 (Fig 4: quantization worsens energy)",
                    llm.short_name()
                ),
                e4 > 1.3 * e16,
                format!("{e4:.0} J vs {e16:.0} J"),
            ));
        }
    }

    let (id, title) = if models == [Llm::Llama31_8b] {
        ("fig4", "Fig 4 — power & energy vs batch × quantization (Llama-3.1)")
    } else {
        ("fig10", "Fig 10 — power & energy vs batch × quantization (all models)")
    };
    ExperimentResult {
        id,
        title: title.to_string(),
        tables,
        checks,
        csv: vec![("power_energy".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_llama_reproduces() {
        let r = run(&[Llm::Llama31_8b], Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
        assert_eq!(r.id, "fig4");
    }

    #[test]
    fn fig10_all_models_reproduces() {
        let r = run(&Llm::ALL, Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
        assert_eq!(r.id, "fig10");
        // DeepSeek has no FP16 column (OoM) — §A.3 point 4.
        assert!(r.tables[3].contains("OOM"));
    }
}
