//! # edgellm-experiments — one driver per paper table and figure
//!
//! Each driver regenerates the rows/series of one artifact from the
//! paper's evaluation, prints them side by side with the published ground
//! truth (transcribed in [`paper`]), runs the *shape checks* — the
//! qualitative claims the paper draws from that artifact — and emits CSV.
//!
//! | id | artifact | driver |
//! |----|----------|--------|
//! | `tab1` | Table 1: model memory per precision | [`tab1`] |
//! | `tab2` | Table 2: power-mode configurations | [`tab2`] |
//! | `fig1` | Fig 1/6 + Table 4: batch sweep, WikiText2 | [`batch_sweep`] |
//! | `fig7` | Fig 7 + Table 5: batch sweep, LongBench | [`batch_sweep`] |
//! | `fig2` | Fig 2/8 + Table 6: seq-len sweep, LongBench | [`seqlen_sweep`] |
//! | `fig9` | Fig 9 + Table 7: seq-len sweep, WikiText2 | [`seqlen_sweep`] |
//! | `fig3` | Fig 3/11: quantization perf impact | [`quant_perf`] |
//! | `tab3` | Table 3: perplexity vs precision | [`perplexity`] |
//! | `fig4` | Fig 4: power/energy vs batch × precision (Llama) | [`power_energy`] |
//! | `fig10` | Fig 10: same, all models | [`power_energy`] |
//! | `fig5` | Fig 5: the nine power modes | [`power_modes`] |
//!
//! Extensions beyond the paper (its named future work) live in
//! [`extensions`]: `ext-engine` (optimized-engine headroom), `ext-devices`
//! (Jetson family sweep), `ext-serving` (continuous vs static batching)
//! and `ext-pmsearch` (minimum-energy DVFS search). `ext-chunked`
//! ([`serve`]) compares the event-driven scheduler's prefill policies,
//! `ext-fleet` ([`fleet`]) serves one request stream across a
//! heterogeneous multi-device fleet with routing, faults and offload,
//! `ext-governor` ([`governor`]) pits online power-mode governors
//! (hysteretic SLO ladder, energy budget, thermal headroom) against
//! every static mode on steady, bursty and adversarial arrivals, and
//! `ext-prefix` ([`prefix`]) sweeps the shared-system-prompt ratio to
//! show TTFT and J/token falling with the radix prefix-cache hit rate.
//!
//! Run them through the `edgellm` binary (`edgellm run fig1`,
//! `edgellm all`) or the [`runner`] API.

pub mod batch_sweep;
pub mod calibration;
pub mod extensions;
pub mod figviz;
pub mod fleet;
pub mod governor;
pub mod paper;
pub mod perplexity;
pub mod power_energy;
pub mod power_modes;
pub mod prefix;
pub mod quant_perf;
pub mod report;
pub mod runner;
pub mod seqlen_sweep;
pub mod serve;
pub mod spec;
pub mod tab1;
pub mod tab2;

pub use report::{Check, ExperimentResult, Table};
pub use runner::{list_experiments, run_experiment, ExperimentOpts};
