//! Fig 1/6/7 + Tables 4/5: the batch-size sweep (bs = 1..128, sl = 96).

use crate::paper::{batch_sweep_truth, BATCH_SIZES};
use crate::report::{vs, Check, ExperimentResult, Table};
use edgellm_core::{Dataset, Engine, Protocol, RunConfig, SequenceSpec};
use edgellm_models::{Llm, Precision};
use rayon::prelude::*;

/// Serving precision per the paper's figure captions: FP16 everywhere,
/// INT8 for DeepSeek (its FP16 weights do not fit).
pub fn serving_precision(llm: Llm) -> Precision {
    if llm == Llm::DeepseekQwen32b {
        Precision::Int8
    } else {
        Precision::Fp16
    }
}

/// Run the batch sweep on one dataset. `protocol` controls warm-up/runs.
pub fn run(dataset: Dataset, protocol: Protocol) -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let truth = batch_sweep_truth(dataset);

    // Sweep all (model, bs) configurations in parallel (rayon).
    let results: Vec<(Llm, Vec<edgellm_core::RunMetrics>)> = Llm::ALL
        .par_iter()
        .map(|&llm| {
            let metrics = BATCH_SIZES
                .par_iter()
                .map(|&bs| {
                    let cfg = RunConfig::new(llm, serving_precision(llm))
                        .batch_size(bs)
                        .sequence(SequenceSpec::paper_96())
                        .dataset(dataset);
                    protocol.run(&engine, &cfg).expect("sl=96 fits all models")
                })
                .collect();
            (llm, metrics)
        })
        .collect();

    let mut tables = Vec::new();
    let mut checks = Vec::new();
    let mut csv = Table::new(vec![
        "model",
        "batch",
        "latency_s",
        "paper_latency_s",
        "tp_tok_s",
        "paper_tp",
        "ram_gb",
        "paper_ram_gb",
        "power_w",
        "energy_j",
    ]);

    for ((llm, ms), tr) in results.iter().zip(truth.iter()) {
        assert_eq!(*llm, tr.llm);
        let mut t = Table::new(vec![
            "batch",
            "RAM GB (paper)",
            "latency s (paper)",
            "tok/s (paper)",
            "power W",
            "energy J",
        ]);
        for (i, &bs) in BATCH_SIZES.iter().enumerate() {
            let m = &ms[i];
            t.row(vec![
                bs.to_string(),
                vs(m.peak_mem_gb, Some(tr.ram_gb[i]), 2),
                vs(m.latency_s, Some(tr.latency_s[i]), 2),
                vs(m.throughput_tok_s, Some(tr.throughput[i]), 1),
                format!("{:.1}", m.median_power_w),
                format!("{:.0}", m.energy_j),
            ]);
            csv.row(vec![
                llm.short_name().to_string(),
                bs.to_string(),
                format!("{:.3}", m.latency_s),
                format!("{:.3}", tr.latency_s[i]),
                format!("{:.1}", m.throughput_tok_s),
                format!("{:.1}", tr.throughput[i]),
                format!("{:.2}", m.peak_mem_gb),
                format!("{:.2}", tr.ram_gb[i]),
                format!("{:.1}", m.median_power_w),
                format!("{:.0}", m.energy_j),
            ]);
        }
        tables.push(format!("{} ({}):\n{}", llm.short_name(), dataset.label(), t.render()));

        // Shape checks per model.
        let tp: Vec<f64> = ms.iter().map(|m| m.throughput_tok_s).collect();
        checks.push(Check::new(
            format!("{}: throughput increases with batch size (Fig 1)", llm.short_name()),
            tp.windows(2).all(|w| w[1] > w[0]),
            format!("{:.0} → {:.0} tok/s", tp[0], tp[7]),
        ));
        let lat: Vec<f64> = ms.iter().map(|m| m.latency_s).collect();
        checks.push(Check::new(
            format!("{}: latency grows with batch size (Fig 1)", llm.short_name()),
            lat[7] > lat[0] * 1.5,
            format!("{:.1}s → {:.1}s", lat[0], lat[7]),
        ));
        let ram: Vec<f64> = ms.iter().map(|m| m.peak_mem_gb).collect();
        checks.push(Check::new(
            format!("{}: memory grows with batch size (§3.1, KV cache)", llm.short_name()),
            ram.windows(2).all(|w| w[1] >= w[0]) && ram[7] > ram[0],
            format!("{:.1} GB → {:.1} GB", ram[0], ram[7]),
        ));
        // Quantitative agreement per cell (the model was calibrated on the
        // bs=1 anchor; all other cells are predictions).
        let worst = BATCH_SIZES
            .iter()
            .enumerate()
            .map(|(i, _)| (lat[i] - tr.latency_s[i]).abs() / tr.latency_s[i])
            .fold(0.0f64, f64::max);
        checks.push(Check::new(
            format!("{}: all latencies within ±35% of Table 4/5", llm.short_name()),
            worst < 0.35,
            format!("worst cell Δ {:.0}%", worst * 100.0),
        ));
    }

    // ASCII rendition of Fig 1: throughput vs batch size, all models.
    let tp_series: Vec<crate::figviz::Series> = results
        .iter()
        .map(|(llm, ms)| {
            crate::figviz::Series::new(
                llm.short_name().to_lowercase(),
                BATCH_SIZES
                    .iter()
                    .zip(ms)
                    .map(|(&bs, m)| (bs as f64, m.throughput_tok_s))
                    .collect(),
            )
        })
        .collect();
    tables.push(crate::figviz::chart(
        &format!("Fig 1 shape — throughput (tok/s) vs batch size, {}", dataset.label()),
        &tp_series,
        64,
        14,
        true,
    ));

    // Cross-model claims.
    let llama = &results.iter().find(|(l, _)| *l == Llm::Llama31_8b).expect("llama").1;
    let gain = llama[7].throughput_tok_s / llama[5].throughput_tok_s - 1.0;
    checks.push(Check::new(
        "Llama throughput gains markedly from bs=32 → 128 (§3.1: +81% in Table 4)",
        gain > 0.25,
        format!("+{:.0}%", gain * 100.0),
    ));
    let deepq = &results.iter().find(|(l, _)| *l == Llm::DeepseekQwen32b).expect("deepq").1;
    let d_tail = deepq[7].throughput_tok_s / deepq[6].throughput_tok_s;
    let d_head = deepq[5].throughput_tok_s / deepq[4].throughput_tok_s;
    checks.push(Check::new(
        "DeepSeek throughput growth saturates toward bs=128 (§3.1)",
        d_tail < d_head,
        format!("64→128 gain ×{d_tail:.2} < 16→32 gain ×{d_head:.2}"),
    ));

    let (id, fig) = match dataset {
        Dataset::WikiText2 => ("fig1", "Fig 1/6 + Table 4"),
        Dataset::LongBench => ("fig7", "Fig 7 + Table 5"),
    };
    ExperimentResult {
        id,
        title: format!("{fig} — batch-size sweep on {}", dataset.label()),
        tables,
        checks,
        csv: vec![("batch_sweep".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikitext_batch_sweep_reproduces() {
        let r = run(Dataset::WikiText2, Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn longbench_batch_sweep_reproduces() {
        let r = run(Dataset::LongBench, Protocol::quick());
        assert!(r.all_pass(), "{}", r.render());
        assert_eq!(r.id, "fig7");
    }
}
