//! `edgellm` — the experiment CLI.
//!
//! ```text
//! edgellm list                 # show every reproducible table/figure
//! edgellm run fig1 [--fast]    # reproduce one artifact
//! edgellm all [--fast]         # reproduce everything, in paper order
//! edgellm run fig5 --csv out/  # also write CSV series
//! ```

use edgellm_experiments::runner::{list_experiments, run_experiment, ExperimentOpts};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  edgellm list\n  edgellm run <id> [--fast] [--csv <dir>]\n  \
         edgellm all [--fast] [--csv <dir>] [--json <dir>]\n\nids:"
    );
    for (id, desc) in list_experiments() {
        eprintln!("  {id:<6} {desc}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let Some(cmd) = positional.first() else { return usage() };

    let opts = ExperimentOpts { fast };
    let ids: Vec<String> = match cmd.as_str() {
        "list" => {
            for (id, desc) in list_experiments() {
                println!("{id:<6} {desc}");
            }
            return ExitCode::SUCCESS;
        }
        "all" => list_experiments().iter().map(|(id, _)| id.to_string()).collect(),
        "run" => {
            let Some(id) = positional.get(1) else { return usage() };
            // `--csv <dir>` consumes its value; don't mistake it for an id.
            if csv_dir.as_deref().map(|p| p.to_string_lossy().to_string()) == Some((*id).clone()) {
                return usage();
            }
            vec![(*id).clone()]
        }
        _ => return usage(),
    };

    let mut all_pass = true;
    for id in &ids {
        match run_experiment(id, opts) {
            Some(result) => {
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    match result.write_csv(dir) {
                        Ok(paths) => {
                            for p in paths {
                                println!("wrote {}", p.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("failed to write CSV: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(dir) = &json_dir {
                    match result.write_json(dir) {
                        Ok(p) => println!("wrote {}", p.display()),
                        Err(e) => {
                            eprintln!("failed to write JSON: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                all_pass &= result.all_pass();
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                return usage();
            }
        }
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("some shape checks FAILED — see output above");
        ExitCode::FAILURE
    }
}
