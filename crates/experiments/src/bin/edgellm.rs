//! `edgellm` — the experiment CLI.
//!
//! ```text
//! edgellm list                 # show every reproducible table/figure
//! edgellm run fig1 [--fast]    # reproduce one artifact
//! edgellm all [--fast]         # reproduce everything, in paper order
//! edgellm run fig5 --csv out/  # also write CSV series
//! edgellm run serve --trace-out serve.json   # Perfetto timeline
//! ```
//!
//! `--trace-out <path>` (or the `EDGELLM_TRACE=<path>` environment
//! variable) enables the process-wide trace sink: every serving and
//! fleet simulation the selected experiments perform appends its
//! timeline — scheduler iteration spans, KV/power-rail counter tracks,
//! preemption and routing instants — and one Chrome trace-event JSON
//! file is written at exit. Load it in Perfetto or `chrome://tracing`.
//!
//! `--forensics-out <path>` (or `EDGELLM_FORENSICS=<path>`) does the
//! same for request-scoped forensics: every simulation records its
//! reconstructed per-request timelines — TTFT/latency blame, energy
//! attribution — and one schema-validated forensics JSON export is
//! written at exit. Inspect it with `edgellm-trace analyze`.

use edgellm_experiments::runner::{
    list_experiments, run_experiment, ExperimentOpts, GovernorChoice,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  edgellm list\n  edgellm run <id> [--fast] [--csv <dir>] [--trace-out <path>] \
         [--forensics-out <path>] [--governor <policy>]\n  \
         edgellm all [--fast] [--csv <dir>] [--json <dir>] [--trace-out <path>] \
         [--forensics-out <path>]\n\n\
         EDGELLM_TRACE=<path> is an environment fallback for --trace-out;\n\
         EDGELLM_FORENSICS=<path> for --forensics-out.\n\
         --governor ladder|budget|thermal picks the online policy ext-governor\n\
         exports to the trace (default: ladder).\n\nids:"
    );
    for (id, desc) in list_experiments() {
        eprintln!("  {id:<6} {desc}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("EDGELLM_TRACE").ok())
        .map(std::path::PathBuf::from);
    let forensics_out = args
        .iter()
        .position(|a| a == "--forensics-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("EDGELLM_FORENSICS").ok())
        .map(std::path::PathBuf::from);
    let governor = match args.iter().position(|a| a == "--governor").map(|i| args.get(i + 1)) {
        None => GovernorChoice::default(),
        Some(Some(v)) => match v.parse::<GovernorChoice>() {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
        },
        Some(None) => return usage(),
    };
    // Flag values look positional; drop each option's value token.
    let consumed: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            *a == "--csv"
                || *a == "--json"
                || *a == "--trace-out"
                || *a == "--forensics-out"
                || *a == "--governor"
        })
        .map(|(i, _)| i + 1)
        .collect();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !consumed.contains(i))
        .map(|(_, a)| a)
        .collect();
    let Some(cmd) = positional.first() else { return usage() };
    if trace_out.is_some() {
        edgellm_trace::sink::enable();
    }
    if forensics_out.is_some() {
        edgellm_trace::forensics::sink::enable();
    }

    let opts = ExperimentOpts { fast, governor };
    let ids: Vec<String> = match cmd.as_str() {
        "list" => {
            for (id, desc) in list_experiments() {
                println!("{id:<6} {desc}");
            }
            return ExitCode::SUCCESS;
        }
        "all" => list_experiments().iter().map(|(id, _)| id.to_string()).collect(),
        "run" => {
            let Some(id) = positional.get(1) else { return usage() };
            vec![(*id).clone()]
        }
        _ => return usage(),
    };

    let mut all_pass = true;
    for id in &ids {
        match run_experiment(id, opts) {
            Some(result) => {
                println!("{}", result.render());
                if let Some(dir) = &csv_dir {
                    match result.write_csv(dir) {
                        Ok(paths) => {
                            for p in paths {
                                println!("wrote {}", p.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("failed to write CSV: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(dir) = &json_dir {
                    match result.write_json(dir) {
                        Ok(p) => println!("wrote {}", p.display()),
                        Err(e) => {
                            eprintln!("failed to write JSON: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                all_pass &= result.all_pass();
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                return usage();
            }
        }
    }
    if let Some(path) = &trace_out {
        let trace = edgellm_trace::sink::take();
        if trace.is_empty() {
            eprintln!(
                "note: no timeline events were recorded (the selected experiments \
                 run no serving or fleet simulations); writing an empty trace"
            );
        }
        match trace.write_chrome_json(path) {
            Ok(()) => println!("wrote {} ({} events)", path.display(), trace.len()),
            Err(e) => {
                eprintln!("failed to write trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &forensics_out {
        let docs = edgellm_trace::forensics::sink::take();
        if docs.is_empty() {
            eprintln!(
                "note: no forensic records were collected (the selected experiments \
                 run no serving or fleet simulations); writing an empty export"
            );
        }
        let body = edgellm_trace::forensics::export_forensics(&docs);
        match std::fs::write(path, &body) {
            Ok(()) => println!("wrote {} ({} runs)", path.display(), docs.len()),
            Err(e) => {
                eprintln!("failed to write forensics: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("some shape checks FAILED — see output above");
        ExitCode::FAILURE
    }
}
