//! Extension experiments — the paper's explicitly-named future work
//! ("dedicated inference engines, … coupling edge inferencing with cloud
//! endpoints", custom power-mode optimization) plus a device-family sweep,
//! all driven by the same calibrated models.

use crate::batch_sweep::serving_precision;
use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::{
    compare_offload, CloudEndpoint, ContinuousBatcher, Engine, PoissonArrivals, RunConfig,
};
use edgellm_governor::{search_power_modes, SearchConstraints};
use edgellm_hw::DeviceSpec;
use edgellm_models::{Llm, Precision};
use edgellm_perf::{ModelCalib, PerfModel};

/// `ext-engine`: headroom of an optimized inference engine over the
/// measured HF-transformers stack — zero the host/dispatch and
/// cache-management overheads the calibration attributes to the serving
/// software, keeping the hardware roofline.
pub fn optimized_engine() -> ExperimentResult {
    let dev = DeviceSpec::orin_agx_64gb();
    let clocks = dev.max_clocks();
    let mut t = Table::new(vec![
        "model",
        "HF-stack tok/s",
        "optimized tok/s",
        "speedup",
        "bs=1 tok/s HF",
        "bs=1 optimized",
    ]);
    let mut csv = Table::new(vec!["model", "bs", "hf_tok_s", "optimized_tok_s"]);
    let mut checks = Vec::new();
    for llm in Llm::ALL {
        let prec = serving_precision(llm);
        let hf = PerfModel::new(dev.clone(), llm, prec, clocks);
        let mut calib = ModelCalib::for_llm(llm);
        calib.host_s = 0.002; // ~2 ms/step of unavoidable launch overhead
        calib.int8_layer_s = 0.0;
        calib.k2_bytes = 0.0; // in-place cache, fused attention
        let opt = PerfModel::with_calib(dev.clone(), llm, prec, clocks, calib);
        let (tp_hf, tp_opt) = (hf.throughput_tok_s(32, 32, 64), opt.throughput_tok_s(32, 32, 64));
        let (tp1_hf, tp1_opt) = (hf.throughput_tok_s(1, 32, 64), opt.throughput_tok_s(1, 32, 64));
        t.row(vec![
            llm.short_name().to_string(),
            format!("{tp_hf:.0}"),
            format!("{tp_opt:.0}"),
            format!("×{:.2}", tp_opt / tp_hf),
            format!("{tp1_hf:.1}"),
            format!("{tp1_opt:.1}"),
        ]);
        for bs in [1u64, 32, 128] {
            csv.row(vec![
                llm.short_name().to_string(),
                bs.to_string(),
                format!("{:.1}", hf.throughput_tok_s(bs, 32, 64)),
                format!("{:.1}", opt.throughput_tok_s(bs, 32, 64)),
            ]);
        }
        checks.push(Check::new(
            format!("{}: an optimized engine only gains (never loses)", llm.short_name()),
            tp_opt >= tp_hf,
            format!("×{:.2}", tp_opt / tp_hf),
        ));
    }
    // The INT8 dispatch-bound model gains the most from a better engine.
    let gain = |llm: Llm| {
        let prec = serving_precision(llm);
        let hf = PerfModel::new(dev.clone(), llm, prec, clocks).throughput_tok_s(32, 32, 64);
        let mut calib = ModelCalib::for_llm(llm);
        calib.host_s = 0.002;
        calib.int8_layer_s = 0.0;
        calib.k2_bytes = 0.0;
        PerfModel::with_calib(dev.clone(), llm, prec, clocks, calib).throughput_tok_s(32, 32, 64)
            / hf
    };
    checks.push(Check::new(
        "the dispatch-bound INT8 model (DeepSeek) gains most from an optimized engine",
        gain(Llm::DeepseekQwen32b) > gain(Llm::Llama31_8b),
        format!("DeepQ ×{:.2} vs Llama ×{:.2}", gain(Llm::DeepseekQwen32b), gain(Llm::Llama31_8b)),
    ));
    ExperimentResult {
        id: "ext-engine",
        title: "Extension — optimized-inference-engine headroom (conclusion's future work)"
            .to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("optimized_engine".to_string(), csv.to_csv())],
    }
}

/// `ext-devices`: the Jetson family sweep — what the study looks like on
/// the 32 GB Orin (Seymour et al.'s device), the Orin NX and the previous-
/// generation Xavier.
pub fn device_family() -> ExperimentResult {
    let devices = DeviceSpec::jetson_family();
    let mut t = Table::new(vec![
        "device",
        "model",
        "precision",
        "fits",
        "latency s",
        "tok/s",
        "power W",
        "energy J",
    ]);
    let mut csv = Table::new(vec![
        "device",
        "model",
        "precision",
        "fits",
        "latency_s",
        "tok_s",
        "power_w",
        "energy_j",
    ]);
    let mut checks = Vec::new();
    let mut orin64_llama = None;
    let mut nx_llama_int4 = None;
    for dev in &devices {
        let engine = Engine::new(dev.clone());
        for llm in [Llm::Phi2, Llm::Llama31_8b] {
            for prec in [Precision::Fp16, Precision::Int4] {
                let cfg = RunConfig::new(llm, prec).power_mode(engine.maxn());
                match engine.run_batch(&cfg) {
                    Ok(m) => {
                        t.row(vec![
                            dev.name.to_string(),
                            llm.short_name().to_string(),
                            prec.label().to_string(),
                            "y".into(),
                            format!("{:.2}", m.latency_s),
                            format!("{:.1}", m.throughput_tok_s),
                            format!("{:.1}", m.median_power_w),
                            format!("{:.0}", m.energy_j),
                        ]);
                        csv.row(vec![
                            dev.name.to_string(),
                            llm.short_name().to_string(),
                            prec.label().to_string(),
                            "1".into(),
                            format!("{:.3}", m.latency_s),
                            format!("{:.1}", m.throughput_tok_s),
                            format!("{:.1}", m.median_power_w),
                            format!("{:.1}", m.energy_j),
                        ]);
                        if dev.name.contains("64GB")
                            && llm == Llm::Llama31_8b
                            && prec == Precision::Fp16
                        {
                            orin64_llama = Some(m.clone());
                        }
                        if dev.name.contains("NX")
                            && llm == Llm::Llama31_8b
                            && prec == Precision::Int4
                        {
                            nx_llama_int4 = Some(m.clone());
                        }
                    }
                    Err(e) => {
                        t.row(vec![
                            dev.name.to_string(),
                            llm.short_name().to_string(),
                            prec.label().to_string(),
                            "n".into(),
                            format!("{e}"),
                            String::new(),
                            String::new(),
                            String::new(),
                        ]);
                    }
                }
            }
        }
    }
    checks.push(Check::new(
        "Llama FP16 runs on the 64 GB Orin but not the 16 GB NX",
        orin64_llama.is_some()
            && Engine::new(DeviceSpec::orin_nx_16gb())
                .run_batch(
                    &RunConfig::new(Llm::Llama31_8b, Precision::Fp16)
                        .power_mode(Engine::new(DeviceSpec::orin_nx_16gb()).maxn()),
                )
                .is_err(),
        "capacity gates the model lineup, as the paper's device choice argues".to_string(),
    ));
    checks.push(Check::new(
        "INT4 brings Llama onto the 16 GB Orin NX (quantization's raison d'être)",
        nx_llama_int4.is_some(),
        format!(
            "NX Llama INT4 latency {:.1} s",
            nx_llama_int4.map(|m| m.latency_s).unwrap_or(f64::NAN)
        ),
    ));
    ExperimentResult {
        id: "ext-devices",
        title: "Extension — Jetson device-family sweep".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("device_family".to_string(), csv.to_csv())],
    }
}

/// `ext-serving`: continuous vs static batching under Poisson arrivals —
/// the serving-engine optimization quantified over the calibrated model.
pub fn serving_comparison() -> ExperimentResult {
    let dev = DeviceSpec::orin_agx_64gb();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let mut t = Table::new(vec![
        "arrival rate /s",
        "policy",
        "mean lat s",
        "p95 lat s",
        "out tok/s",
        "occupancy",
    ]);
    let mut csv = Table::new(vec!["rate", "policy", "mean_lat_s", "p95_lat_s", "tok_s"]);
    let mut checks = Vec::new();
    for rate in [0.5f64, 1.5, 3.0] {
        let reqs = PoissonArrivals::paper_shape(rate).generate(80, 11);
        let batcher = ContinuousBatcher::new(32);
        let cont = batcher.run(&dev, &cfg, &reqs).expect("fits");
        let stat = batcher.run_static(&dev, &cfg, &reqs).expect("fits");
        for (policy, r) in [("continuous", &cont), ("static", &stat)] {
            t.row(vec![
                format!("{rate:.1}"),
                policy.to_string(),
                format!("{:.1}", r.mean_latency_s),
                format!("{:.1}", r.p95_latency_s),
                format!("{:.1}", r.output_tok_s),
                format!("{:.1}", r.mean_occupancy),
            ]);
            csv.row(vec![
                format!("{rate}"),
                policy.to_string(),
                format!("{:.2}", r.mean_latency_s),
                format!("{:.2}", r.p95_latency_s),
                format!("{:.2}", r.output_tok_s),
            ]);
        }
        checks.push(Check::new(
            format!("continuous batching cuts mean latency at rate {rate}/s"),
            cont.mean_latency_s < stat.mean_latency_s,
            format!("{:.1}s vs {:.1}s", cont.mean_latency_s, stat.mean_latency_s),
        ));
    }
    ExperimentResult {
        id: "ext-serving",
        title: "Extension — continuous vs static batching under Poisson arrivals".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("serving".to_string(), csv.to_csv())],
    }
}

/// `ext-pmsearch`: custom power-mode optimization (conclusion's
/// "leverage [the results] to optimize LLM inferencing on the edge").
pub fn power_mode_search() -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
    let maxn = engine.run_batch(&cfg).expect("fits");
    let r = search_power_modes(
        &engine,
        &cfg,
        SearchConstraints { max_latency_s: maxn.latency_s * 1.5, max_power_w: f64::INFINITY },
        4,
    )
    .expect("search runs");
    let best = r.best_candidate().expect("feasible set non-empty");
    let mut t = Table::new(vec!["setting", "latency s", "power W", "energy J"]);
    t.row(vec![
        "MaxN".to_string(),
        format!("{:.2}", maxn.latency_s),
        format!("{:.1}", maxn.median_power_w),
        format!("{:.0}", maxn.energy_j),
    ]);
    t.row(vec![
        format!("best: {}", best.mode.throttle_summary()),
        format!("{:.2}", best.metrics.latency_s),
        format!("{:.1}", best.metrics.median_power_w),
        format!("{:.0}", best.metrics.energy_j),
    ]);
    let saving = 1.0 - best.metrics.energy_j / maxn.energy_j;
    let checks = vec![
        Check::new(
            "a custom DVFS point beats every stock mode on energy within a 1.5× SLO",
            best.metrics.energy_j < maxn.energy_j,
            format!("energy −{:.0}% vs MaxN", saving * 100.0),
        ),
        Check::new(
            "the optimum throttles the GPU, not the memory (PM-A-like, per §3.4)",
            best.mode.clocks.gpu_mhz < 1301 && best.mode.clocks.mem_mhz >= 2000,
            best.mode.throttle_summary(),
        ),
    ];
    let mut csv = Table::new(vec![
        "mode",
        "gpu_mhz",
        "mem_mhz",
        "latency_s",
        "power_w",
        "energy_j",
        "feasible",
    ]);
    for c in &r.candidates {
        csv.row(vec![
            c.mode.name.clone(),
            c.mode.clocks.gpu_mhz.to_string(),
            c.mode.clocks.mem_mhz.to_string(),
            format!("{:.2}", c.metrics.latency_s),
            format!("{:.1}", c.metrics.median_power_w),
            format!("{:.0}", c.metrics.energy_j),
            c.feasible.to_string(),
        ]);
    }
    ExperimentResult {
        id: "ext-pmsearch",
        title: "Extension — minimum-energy custom power-mode search".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("pmsearch".to_string(), csv.to_csv())],
    }
}

/// `ext-offload`: local inference vs cloud offload (conclusion's
/// "coupling edge inferencing with cloud endpoints") across network
/// conditions — where does keeping the model on the edge win?
pub fn offload_analysis() -> ExperimentResult {
    let engine = Engine::orin_agx_64gb();
    let endpoints = [
        ("datacenter", CloudEndpoint::datacenter()),
        ("field-link", CloudEndpoint::field_link()),
        ("degraded", {
            let mut e = CloudEndpoint::field_link();
            e.rtt_s = 2.0;
            e.ttft_s = 4.0;
            e.tok_rate = 10.0;
            e
        }),
    ];
    let mut t = Table::new(vec![
        "model",
        "network",
        "local s",
        "cloud s",
        "local J",
        "cloud J (edge)",
        "latency winner",
        "energy winner",
    ]);
    let mut csv = Table::new(vec!["model", "network", "local_s", "cloud_s", "local_j", "cloud_j"]);
    let mut checks = Vec::new();
    let mut degraded_local_wins = 0;
    let mut datacenter_cloud_wins = 0;
    for llm in Llm::ALL {
        let cfg = RunConfig::new(llm, serving_precision(llm));
        for (name, ep) in &endpoints {
            let c = compare_offload(&engine, &cfg, ep).expect("bs=1 fits");
            t.row(vec![
                llm.short_name().to_string(),
                name.to_string(),
                format!("{:.1}", c.local_latency_s),
                format!("{:.1}", c.cloud_latency_s),
                format!("{:.0}", c.local_energy_j),
                format!("{:.0}", c.cloud_energy_j),
                if c.local_wins_latency() { "edge" } else { "cloud" }.to_string(),
                if c.local_wins_energy() { "edge" } else { "cloud" }.to_string(),
            ]);
            csv.row(vec![
                llm.short_name().to_string(),
                name.to_string(),
                format!("{:.2}", c.local_latency_s),
                format!("{:.2}", c.cloud_latency_s),
                format!("{:.1}", c.local_energy_j),
                format!("{:.1}", c.cloud_energy_j),
            ]);
            if *name == "degraded" && c.local_wins_latency() {
                degraded_local_wins += 1;
            }
            if *name == "datacenter" && !c.local_wins_latency() {
                datacenter_cloud_wins += 1;
            }
        }
    }
    checks.push(Check::new(
        "with a good network, offloading single requests beats local for all models",
        datacenter_cloud_wins == 4,
        format!("{datacenter_cloud_wins}/4 models"),
    ));
    checks.push(Check::new(
        "on a degraded link, local inference wins latency for the smaller models",
        degraded_local_wins >= 1,
        format!("{degraded_local_wins}/4 models"),
    ));
    ExperimentResult {
        id: "ext-offload",
        title: "Extension — edge inference vs cloud offload across network conditions".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("offload".to_string(), csv.to_csv())],
    }
}

/// `ext-thermal`: sustained serving under thermal constraints — the
/// paper's short-run protocol never heats the module; a fanless deployment
/// does. Simulates one hour of steady decode in three enclosures and asks
/// which power mode sustains the most throughput.
pub fn thermal_sustained() -> ExperimentResult {
    use edgellm_hw::{PowerMode, PowerModeId};
    use edgellm_power::{simulate_sustained, ThermalModel};
    let engine = Engine::orin_agx_64gb();
    let enclosures = [
        ("active (devkit fan)", ThermalModel::orin_agx_active()),
        ("passive heatsink", ThermalModel::orin_agx_passive()),
        (
            "sealed enclosure",
            ThermalModel { r_c_per_w: 2.1, tau_s: 300.0, t_ambient_c: 30.0, t_limit_c: 95.0 },
        ),
    ];
    let modes = [PowerModeId::MaxN, PowerModeId::A, PowerModeId::B];
    let mut t = Table::new(vec![
        "enclosure",
        "mode",
        "demand W",
        "sustained W",
        "throttled %",
        "nominal tok/s",
        "sustained tok/s",
    ]);
    let mut csv = Table::new(vec![
        "enclosure",
        "mode",
        "demand_w",
        "sustained_w",
        "throttled_frac",
        "sustained_tok_s",
    ]);
    let mut checks = Vec::new();
    let mut sealed: Vec<(PowerModeId, f64)> = Vec::new();
    for (name, model) in &enclosures {
        for id in modes {
            let cfg =
                RunConfig::new(Llm::Llama31_8b, Precision::Fp16).power_mode(PowerMode::table2(id));
            let m = engine.run_batch(&cfg).expect("fits");
            let tr = simulate_sustained(model, m.median_power_w, 3600.0, 1.0, 0.3);
            // Power-proportional approximation: delivered throughput scales
            // with delivered power (decode is bandwidth/compute bound).
            let sustained_tp = m.throughput_tok_s * tr.mean_power_w / m.median_power_w;
            t.row(vec![
                name.to_string(),
                id.name().to_string(),
                format!("{:.1}", m.median_power_w),
                format!("{:.1}", tr.mean_power_w),
                format!("{:.0}%", tr.throttled_fraction * 100.0),
                format!("{:.0}", m.throughput_tok_s),
                format!("{:.0}", sustained_tp),
            ]);
            csv.row(vec![
                name.to_string(),
                id.name().to_string(),
                format!("{:.2}", m.median_power_w),
                format!("{:.2}", tr.mean_power_w),
                format!("{:.3}", tr.throttled_fraction),
                format!("{:.1}", sustained_tp),
            ]);
            if *name == "sealed enclosure" {
                sealed.push((id, sustained_tp));
            }
            if *name == "active (devkit fan)" {
                checks.push(Check::new(
                    format!("active cooling never throttles {} (paper's regime)", id.name()),
                    tr.throttled_fraction == 0.0,
                    format!("{:.0}% throttled", tr.throttled_fraction * 100.0),
                ));
            }
        }
    }
    let get = |id: PowerModeId| sealed.iter().find(|(m, _)| *m == id).expect("mode").1;
    checks.push(Check::new(
        "in a sealed enclosure, PM-A sustains more throughput than MaxN",
        get(PowerModeId::A) > get(PowerModeId::MaxN),
        format!(
            "PM-A {:.0} tok/s vs MaxN {:.0} tok/s sustained",
            get(PowerModeId::A),
            get(PowerModeId::MaxN)
        ),
    ));
    ExperimentResult {
        id: "ext-thermal",
        title: "Extension — sustained serving under thermal constraints".to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("thermal".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_extension_passes() {
        let r = thermal_sustained();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn offload_extension_passes() {
        let r = offload_analysis();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn optimized_engine_extension_passes() {
        let r = optimized_engine();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn device_family_extension_passes() {
        let r = device_family();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn serving_extension_passes() {
        let r = serving_comparison();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    fn pmsearch_extension_passes() {
        let r = power_mode_search();
        assert!(r.all_pass(), "{}", r.render());
    }
}
