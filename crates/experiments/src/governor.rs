//! `ext-governor`: online SLO-aware power-mode governance — closing the
//! loop the paper leaves open. The paper characterizes the nine static
//! Table 2 power modes offline; `ext-pmsearch` picks the best *fixed*
//! mode for a known workload. This driver asks the deployment question
//! one step further: when the workload is bursty and unknown in advance,
//! can an online governor that retunes the mode at iteration boundaries
//! beat every static choice?
//!
//! Three arrival patterns (steady Poisson, bursty, adversarial
//! everything-at-once) are each served on the Orin AGX under every
//! static stock mode and under three online policies from
//! `edgellm-governor`: the hysteretic SLO ladder, the energy-budget
//! enforcer, and the thermal-headroom governor. A separate sustained
//! scenario pits the thermal governor against static MAXN inside a
//! fanless enclosure where MAXN would trip the thermal guard.
//!
//! The headline acceptance check: on the bursty pattern the hysteretic
//! ladder spends *less energy* than the best static mode (highest SLO
//! attainment, ties broken on energy) at equal-or-better attainment —
//! because it sprints through bursts on the high rungs and idles the
//! gaps on the low ones, which no fixed mode can do.

use crate::report::{Check, ExperimentResult, Table};
use crate::runner::GovernorChoice;
use edgellm_core::serve::{Completion, ServeConfig, ServeSim};
use edgellm_core::{IterationTrace, PoissonArrivals, Request, RunConfig};
use edgellm_governor::{
    verify_budget, EnergyBudget, Governor, GovernorAudit, GovernorPolicy, HystereticLadder,
    ModeLadder, SloSpec, ThermalHeadroom,
};
use edgellm_hw::DeviceSpec;
use edgellm_models::{Llm, Precision};
use edgellm_power::ThermalModel;

/// Model and precision served throughout (the paper's headline pair).
const LLM: Llm = Llm::Llama31_8b;
const PRECISION: Precision = Precision::Fp16;

/// Latency targets the ladder policy defends and every run is scored
/// against: tight enough that the low rungs miss them under load.
const SLO: SloSpec = SloSpec { ttft_s: 8.0, tbt_s: 0.5 };

/// Budget policy: sustained cap as a multiple of the floor rung's peak
/// power (device-relative, so the floor always stays feasible).
const BUDGET_CAP_FACTOR: f64 = 1.5;

/// Thermal scenario: headroom the governor defends below the trip limit
/// (°C), and the fanless enclosure it runs in. The small thermal mass
/// (short `tau_s`) makes the trip dynamics visible within one serving
/// run rather than one afternoon.
const THERMAL_MARGIN_C: f64 = 6.0;
fn fanless_enclosure() -> ThermalModel {
    ThermalModel { r_c_per_w: 2.1, tau_s: 60.0, t_ambient_c: 30.0, t_limit_c: 95.0 }
}

/// One served configuration's scorecard.
struct GovRun {
    policy: String,
    completed: usize,
    energy_j: f64,
    energy_per_token_j: f64,
    attainment: f64,
    makespan_s: f64,
    decisions: usize,
    /// Peak junction temperature a fleet `ThermalGuard` integrating the
    /// run's trace would have seen (°C), under [`fanless_enclosure`].
    peak_c: f64,
    audit: Option<GovernorAudit>,
    trace: Vec<IterationTrace>,
}

/// The three arrival patterns of the policy comparison.
fn workloads() -> Vec<(&'static str, Vec<Request>)> {
    let steady = PoissonArrivals::paper_shape(0.6).generate(24, 11);
    // Three bursts of five identical requests with long idle gaps — the
    // shape a static mode cannot serve efficiently: it either idles the
    // gaps at a hot mode's floor power or crawls through the bursts.
    let mut bursty = Vec::new();
    for (b, t0) in [0.0, 45.0, 90.0].into_iter().enumerate() {
        for i in 0..5u64 {
            bursty.push(Request {
                id: (b as u64) * 5 + i,
                arrival_s: t0,
                input_tokens: 64,
                output_tokens: 48,
            });
        }
    }
    let adversarial = (0..12u64)
        .map(|i| Request { id: i, arrival_s: 0.0, input_tokens: 64, output_tokens: 48 })
        .collect();
    vec![("steady", steady), ("bursty", bursty), ("adversarial", adversarial)]
}

/// Fraction of completions meeting both SLO targets.
fn attainment(completions: &[Completion]) -> f64 {
    if completions.is_empty() {
        return 0.0;
    }
    let ok = completions
        .iter()
        .filter(|c| {
            let tbt = if c.output_tokens > 1 {
                (c.latency_s - c.ttft_s) / (c.output_tokens - 1) as f64
            } else {
                0.0
            };
            c.ttft_s <= SLO.ttft_s && tbt <= SLO.tbt_s
        })
        .count();
    ok as f64 / completions.len() as f64
}

/// Integrate the fleet `ThermalGuard`'s RC junction model over a trace
/// and return the peak temperature — "would this run have tripped?".
fn guard_peak_c(model: &ThermalModel, trace: &[IterationTrace]) -> f64 {
    let mut temp = model.t_ambient_c;
    let mut peak = temp;
    for it in trace {
        temp += (it.power_w * model.r_c_per_w - (temp - model.t_ambient_c)) / model.tau_s * it.dt_s;
        peak = peak.max(temp);
    }
    peak
}

/// Serve `reqs` on the AGX starting in `initial` (a ladder rung index),
/// optionally governed. Returns the scorecard and, for governed runs,
/// the live simulation + governor pair for trace export.
fn serve(
    ladder: &ModeLadder,
    initial: usize,
    policy: Option<Box<dyn GovernorPolicy>>,
    label: &str,
    reqs: &[Request],
) -> (GovRun, Option<(ServeSim, Governor)>) {
    let dev = DeviceSpec::orin_agx_64gb();
    let mode = ladder.rung(initial).mode.clone();
    let run_cfg = RunConfig::new(LLM, PRECISION).power_mode(mode.clone());
    let mut sim = ServeSim::new(ServeConfig::chunked(16), &dev, &run_cfg, reqs)
        .expect("Llama FP16 fits the 64 GB AGX");
    let mut gov = policy.map(|p| Governor::new(p, &dev, LLM, PRECISION, &mode));
    while let Some(t) = sim.next_event_s() {
        match &mut gov {
            Some(g) => sim.step_governed(t, g),
            None => sim.step(t),
        }
        .expect("stock modes validate on their own device");
    }
    // These sims stay live for trace export instead of going through
    // `finish()`, so mirror its forensics hook here: every served
    // configuration contributes a run document when collection is on.
    if edgellm_trace::forensics::sink::enabled() {
        edgellm_trace::forensics::sink::record(edgellm_trace::forensics::reconstruct(
            &sim.forensics(),
        ));
    }
    let r = sim.report();
    let run = GovRun {
        policy: label.to_string(),
        completed: r.requests,
        energy_j: r.energy_j,
        energy_per_token_j: r.energy_j / sim.served_output_tokens().max(1) as f64,
        attainment: attainment(sim.completions()),
        makespan_s: r.makespan_s,
        decisions: gov.as_ref().map(|g| g.decisions().len()).unwrap_or(0),
        peak_c: guard_peak_c(&fanless_enclosure(), sim.trace()),
        audit: gov.as_ref().map(|g| g.audit()),
        trace: sim.trace().to_vec(),
    };
    (run, gov.map(|g| (sim, g)))
}

/// The online policy menu; every governed run starts on the floor rung.
fn policies(ladder: &ModeLadder) -> Vec<(&'static str, Box<dyn GovernorPolicy>)> {
    let cap_w = ladder.rung(0).cost.peak_power_w * BUDGET_CAP_FACTOR;
    vec![
        ("ladder", Box::new(HystereticLadder::new(SLO)) as Box<dyn GovernorPolicy>),
        ("budget", Box::new(EnergyBudget::new(cap_w))),
        ("thermal", Box::new(ThermalHeadroom::new(fanless_enclosure(), THERMAL_MARGIN_C))),
    ]
}

/// Run the extension experiment. `opts.governor` picks which governed
/// bursty run is exported to the process trace sink (`--trace-out`).
pub fn run(opts: crate::runner::ExperimentOpts) -> ExperimentResult {
    let dev = DeviceSpec::orin_agx_64gb();
    let ladder = ModeLadder::stock(&dev, LLM, PRECISION);
    let mut t = Table::new(vec![
        "workload",
        "policy",
        "done",
        "energy J",
        "J/tok",
        "SLO",
        "makespan s",
        "decisions",
    ]);
    let mut csv = Table::new(vec![
        "workload",
        "policy",
        "completed",
        "energy_j",
        "energy_per_token_j",
        "slo_attainment",
        "makespan_s",
        "decisions",
    ]);
    let mut checks = Vec::new();
    let traced_policy = match opts.governor {
        GovernorChoice::Ladder => "ladder",
        GovernorChoice::Budget => "budget",
        GovernorChoice::Thermal => "thermal",
    };

    for (wname, reqs) in workloads() {
        let mut runs: Vec<GovRun> = Vec::new();
        for (i, rung) in ladder.rungs().iter().enumerate() {
            let (r, _) = serve(&ladder, i, None, &format!("static:{}", rung.mode.name), &reqs);
            runs.push(r);
        }
        for (pname, policy) in policies(&ladder) {
            let (r, live) = serve(&ladder, 0, Some(policy), pname, &reqs);
            if wname == "bursty" && pname == traced_policy {
                if let Some((sim, gov)) = &live {
                    edgellm_trace::sink::with(|out| {
                        edgellm_governor::trace::record_governed_run(out, sim, gov);
                    });
                }
            }
            runs.push(r);
        }
        for r in &runs {
            t.row(vec![
                wname.to_string(),
                r.policy.clone(),
                r.completed.to_string(),
                format!("{:.0}", r.energy_j),
                format!("{:.2}", r.energy_per_token_j),
                format!("{:.0}%", r.attainment * 100.0),
                format!("{:.1}", r.makespan_s),
                r.decisions.to_string(),
            ]);
            csv.row(vec![
                wname.to_string(),
                r.policy.clone(),
                r.completed.to_string(),
                format!("{:.2}", r.energy_j),
                format!("{:.4}", r.energy_per_token_j),
                format!("{:.4}", r.attainment),
                format!("{:.3}", r.makespan_s),
                r.decisions.to_string(),
            ]);
        }
        let n = reqs.len();
        checks.push(Check::new(
            format!("{wname}: every run completes all {n} requests"),
            runs.iter().all(|r| r.completed == n),
            format!("{} configurations", runs.len()),
        ));

        // The best static mode: highest attainment, ties on energy.
        let statics: Vec<&GovRun> = runs.iter().filter(|r| r.audit.is_none()).collect();
        let best_static = statics
            .iter()
            .copied()
            .max_by(|a, b| {
                (a.attainment, -a.energy_j)
                    .partial_cmp(&(b.attainment, -b.energy_j))
                    .expect("finite scores")
            })
            .expect("static rungs ran");
        let find = |name: &str| runs.iter().find(|r| r.policy == name).expect("policy ran");
        let lad = find("ladder");
        if wname == "bursty" {
            checks.push(Check::new(
                "bursty: the hysteretic ladder beats the best static mode on energy \
                 at equal-or-better SLO attainment",
                lad.energy_j < best_static.energy_j && lad.attainment >= best_static.attainment,
                format!(
                    "ladder {:.0} J @ {:.0}% vs {} {:.0} J @ {:.0}%",
                    lad.energy_j,
                    lad.attainment * 100.0,
                    best_static.policy,
                    best_static.energy_j,
                    best_static.attainment * 100.0
                ),
            ));
            checks.push(Check::new(
                "bursty: the ladder actually governs (sprints up, idles down)",
                lad.decisions >= 4,
                format!("{} mode changes", lad.decisions),
            ));
            // Determinism: the governed run replays bit-identically.
            let (replay, _) =
                serve(&ladder, 0, Some(Box::new(HystereticLadder::new(SLO))), "ladder", &reqs);
            checks.push(Check::new(
                "bursty: the governed run replays to identical decisions and energy",
                replay.audit.as_ref().map(|a| &a.decisions)
                    == lad.audit.as_ref().map(|a| &a.decisions)
                    && replay.energy_j == lad.energy_j,
                format!("{} decisions, {:.3} J either way", replay.decisions, replay.energy_j),
            ));
        }
        let bud = find("budget");
        checks.push(Check::new(
            format!("{wname}: the budget policy never violates its energy cap"),
            verify_budget(bud.audit.as_ref().expect("budget audit"), &bud.trace).is_ok(),
            format!("{} mode changes, {:.0} J total", bud.decisions, bud.energy_j),
        ));
    }

    // Thermal scenario: sustained load in the fanless enclosure. Static
    // MAXN would trip the fleet's thermal guard; the thermal-headroom
    // governor sheds rungs first and never reaches the limit.
    let sustained = PoissonArrivals::paper_shape(1.2).generate(160, 5);
    let top = ladder.len() - 1;
    let (maxn, _) =
        serve(&ladder, top, None, &format!("static:{}", ladder.rung(top).mode.name), &sustained);
    let (gov, _) = serve(
        &ladder,
        0,
        Some(Box::new(ThermalHeadroom::new(fanless_enclosure(), THERMAL_MARGIN_C))),
        "thermal",
        &sustained,
    );
    let limit = fanless_enclosure().t_limit_c;
    let mut tt = Table::new(vec!["config", "peak °C", "trip limit °C", "done", "energy J"]);
    for r in [&maxn, &gov] {
        tt.row(vec![
            r.policy.clone(),
            format!("{:.1}", r.peak_c),
            format!("{limit:.0}"),
            r.completed.to_string(),
            format!("{:.0}", r.energy_j),
        ]);
    }
    checks.push(Check::new(
        "sustained: static MAXN would trip the fanless enclosure's thermal guard",
        maxn.peak_c >= limit,
        format!("{:.1} °C vs {limit:.0} °C limit", maxn.peak_c),
    ));
    checks.push(Check::new(
        "sustained: the thermal-headroom governor stays below the trip limit",
        gov.peak_c < limit && gov.completed == sustained.len(),
        format!("{:.1} °C peak, {} mode changes", gov.peak_c, gov.decisions),
    ));

    ExperimentResult {
        id: "ext-governor",
        title: format!(
            "Extension — online power-mode governance (Orin AGX, Llama-3.1 FP16; \
             SLO {:.0} s TTFT / {:.2} s TBT; budget cap {BUDGET_CAP_FACTOR}× floor peak)",
            SLO.ttft_s, SLO.tbt_s
        ),
        tables: vec![t.render(), tt.render()],
        checks,
        csv: vec![("governor_policies".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentOpts;

    #[test]
    fn governor_experiment_passes() {
        let r = run(ExperimentOpts { fast: true, ..Default::default() });
        assert!(r.all_pass(), "{}", r.render());
    }
}
