//! ASCII figure rendering — terminal equivalents of the paper's plots.
//!
//! The drivers print tables; these helpers render the same series as
//! fixed-grid ASCII charts so `edgellm run fig1` shows the *shape* of
//! Fig 1 (throughput rising, latency rising) directly in the terminal.

/// A named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (one character is used as the plot glyph).
    pub label: String,
    /// Points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Render series as an ASCII scatter/line chart on a `width × height`
/// character grid, with a y-axis scale and an x-axis range footer.
/// X may be plotted on a log₂ scale (the paper's batch-size axes are
/// powers of two).
pub fn chart(title: &str, series: &[Series], width: usize, height: usize, log_x: bool) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let tx = |x: f64| if log_x { x.max(1e-12).log2() } else { x };
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(tx(x));
        x1 = x1.max(tx(x));
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        // Plot points plus linear interpolation between consecutive points.
        let cells: Vec<(usize, usize)> = s
            .points
            .iter()
            .map(|&(x, y)| {
                let cx = ((tx(x) - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                (cx.min(width - 1), height - 1 - cy.min(height - 1))
            })
            .collect();
        for w in cells.windows(2) {
            let ((ax, ay), (bx, by)) = (w[0], w[1]);
            let steps = ax.abs_diff(bx).max(ay.abs_diff(by)).max(1);
            for i in 0..=steps {
                let f = i as f64 / steps as f64;
                let x = (ax as f64 + f * (bx as f64 - ax as f64)).round() as usize;
                let y = (ay as f64 + f * (by as f64 - ay as f64)).round() as usize;
                grid[y.min(height - 1)][x.min(width - 1)] = glyph;
            }
        }
        if let Some(&(x, y)) = cells.first() {
            grid[y][x] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let yv = y1 - (y1 - y0) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{yv:>9.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n{:>11}", "", "-".repeat(width), ""));
    let x_label = if log_x {
        format!("x: {:.0} … {:.0} (log2)", 2f64.powf(x0), 2f64.powf(x1))
    } else {
        format!("x: {x0:.0} … {x1:.0}")
    };
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{}={}", s.label.chars().next().unwrap_or('*'), s.label))
        .collect();
    out.push_str(&format!("{x_label}   {}\n", legend.join("  ")));
    out
}

/// A horizontal bar chart (for Fig 5's latency bars).
pub fn bars(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4);
    let mut out = format!("{title}\n");
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$} |{} {v:.1}\n",
            "#".repeat(n.max(if *v > 0.0 { 1 } else { 0 }))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_glyphs_and_scale() {
        let s = Series::new("llama", vec![(1.0, 15.0), (32.0, 308.0), (128.0, 559.0)]);
        let c = chart("Fig 1", &[s], 40, 10, true);
        assert!(c.contains('l'), "{c}");
        assert!(c.contains("Fig 1"));
        assert!(c.contains("log2"));
        assert!(c.lines().count() >= 12);
    }

    #[test]
    fn rising_series_occupies_opposite_corners() {
        let s = Series::new("x", vec![(0.0, 0.0), (10.0, 100.0)]);
        let c = chart("t", &[s], 20, 6, false);
        let lines: Vec<&str> = c.lines().collect();
        // First grid row (max y) has the glyph near the right edge,
        // last grid row near the left.
        assert!(lines[1].trim_end().ends_with('x'), "{c}");
        assert!(lines[6].contains('x'), "{c}");
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        let b = Series::new("b", vec![(0.0, 2.0), (1.0, 1.0)]);
        let c = chart("t", &[a, b], 24, 8, false);
        assert!(c.contains('a') && c.contains('b'));
        assert!(c.contains("a=a") && c.contains("b=b"));
    }

    #[test]
    fn empty_series_degrades_gracefully() {
        let c = chart("t", &[], 20, 5, false);
        assert!(c.contains("no data"));
    }

    #[test]
    fn bars_scale_to_longest() {
        let rows = vec![("MaxN".to_string(), 10.0), ("H".to_string(), 47.0)];
        let b = bars("latency", &rows, 40);
        let maxn_len = b.lines().nth(1).unwrap().matches('#').count();
        let h_len = b.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(h_len, 40);
        assert!((7..=11).contains(&maxn_len), "{b}");
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        let _ = chart("t", &[], 4, 2, false);
    }
}
