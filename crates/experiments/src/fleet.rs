//! `ext-fleet`: heterogeneous multi-device fleet serving — the deployment
//! question one level above the paper. Given a mixed rack of Jetson-class
//! boards (Orin AGX, Orin NX, Xavier AGX) serving one Poisson request
//! stream, how much do the routing policy, fault tolerance and cloud
//! spillover matter for throughput, latency SLOs and energy per token?
//!
//! Everything below runs on the same calibrated per-device models as the
//! paper experiments; the fleet layer only decides *where* each request
//! executes.

use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::{CloudEndpoint, PoissonArrivals, Request, RunConfig};
use edgellm_fleet::{
    run_fleet, EnergyGreedy, FaultPlan, FleetConfig, FleetDevice, FleetReport, JoinShortestQueue,
    LeastKvPressure, RoundRobin, RoutingPolicy, SloAware,
};
use edgellm_hw::{DeviceSpec, PowerMode};
use edgellm_models::{Llm, Precision};

/// Requests in the arrival trace.
const N_REQS: usize = 60;
/// Arrival-trace seed (fixed: fleet runs must be reproducible).
const SEED: u64 = 42;
/// Mean arrival rate (req/s) for the policy comparison.
const RATE: f64 = 1.5;
/// End-to-end latency SLO (s).
const SLO_S: f64 = 30.0;

/// The heterogeneous fleet: the paper's 64 GB Orin AGX serving FP16 next
/// to an Orin NX and a previous-generation Xavier AGX serving INT4 (the
/// precision that fits their memory), each at its own MAXN power mode.
fn mixed_fleet() -> Vec<FleetDevice> {
    let nx = DeviceSpec::orin_nx_16gb();
    let xav = DeviceSpec::xavier_agx_32gb();
    vec![
        FleetDevice::new(
            DeviceSpec::orin_agx_64gb(),
            RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
        )
        .named("orin-agx-64"),
        FleetDevice::new(
            nx.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&nx)),
        )
        .named("orin-nx-16"),
        FleetDevice::new(
            xav.clone(),
            RunConfig::new(Llm::Llama31_8b, Precision::Int4).power_mode(PowerMode::maxn_for(&xav)),
        )
        .named("xavier-agx-32"),
    ]
}

fn policy_set() -> Vec<Box<dyn RoutingPolicy>> {
    vec![
        Box::new(RoundRobin::default()),
        Box::new(JoinShortestQueue),
        Box::new(LeastKvPressure),
        Box::new(EnergyGreedy::default()),
        Box::new(SloAware::new(SLO_S)),
    ]
}

fn fleet_config(with_cloud: bool) -> FleetConfig {
    FleetConfig {
        slo_latency_s: SLO_S,
        cloud: with_cloud.then(CloudEndpoint::datacenter),
        faults: FaultPlan::none(),
    }
}

fn run_policy(policy: Box<dyn RoutingPolicy>, reqs: &[Request], with_cloud: bool) -> FleetReport {
    run_fleet(mixed_fleet(), policy, fleet_config(with_cloud), reqs)
        .expect("fleet members all load the model")
}

/// Run the extension experiment.
pub fn run() -> ExperimentResult {
    let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
    let mut t = Table::new(vec![
        "policy",
        "done",
        "offload",
        "tok/s",
        "mean lat s",
        "p95 lat s",
        "p50 TTFT s",
        "energy J",
        "J/tok",
        "SLO",
    ]);
    let mut csv = Table::new(vec![
        "policy",
        "completed",
        "offloaded",
        "output_tok_s",
        "mean_latency_s",
        "p95_latency_s",
        "p50_ttft_s",
        "energy_j",
        "energy_per_token_j",
        "slo_attainment",
    ]);
    let mut checks = Vec::new();
    let mut by_name: Vec<FleetReport> = Vec::new();
    for policy in policy_set() {
        // Only the deadline-aware policy gets a cloud endpoint to spill to;
        // the others manage the fleet alone.
        let with_cloud = policy.name() == "slo-aware";
        let r = run_policy(policy, &reqs, with_cloud);
        t.row(vec![
            r.policy.clone(),
            format!("{}", r.completed),
            format!("{}", r.offloaded),
            format!("{:.1}", r.output_tok_s),
            format!("{:.2}", r.mean_latency_s),
            format!("{:.2}", r.p95_latency_s),
            format!("{:.2}", r.p50_ttft_s),
            format!("{:.0}", r.energy_j),
            format!("{:.2}", r.energy_per_token_j),
            format!("{:.0}%", r.slo_attainment * 100.0),
        ]);
        csv.row(vec![
            r.policy.clone(),
            r.completed.to_string(),
            r.offloaded.to_string(),
            format!("{:.3}", r.output_tok_s),
            format!("{:.4}", r.mean_latency_s),
            format!("{:.4}", r.p95_latency_s),
            format!("{:.4}", r.p50_ttft_s),
            format!("{:.2}", r.energy_j),
            format!("{:.4}", r.energy_per_token_j),
            format!("{:.4}", r.slo_attainment),
        ]);
        checks.push(Check::new(
            format!("{}: every request completes, none lost", r.policy),
            r.completed + r.offloaded >= r.submitted && r.lost == 0,
            format!("{} done, {} lost", r.completed, r.lost),
        ));
        by_name.push(r);
    }
    let find = |name: &str| by_name.iter().find(|r| r.policy == name).expect("policy ran");
    let rr = find("round-robin");
    let greedy = find("energy-greedy");

    // Determinism: same members, policy and trace → bit-identical report.
    let replay = run_policy(Box::new(RoundRobin::default()), &reqs, false);
    checks.push(Check::new(
        "same seed and fleet replay to an identical report",
        replay == *rr,
        format!("{} completions either way", replay.completed),
    ));
    checks.push(Check::new(
        "energy-aware routing beats round-robin on energy per token",
        greedy.energy_per_token_j < rr.energy_per_token_j,
        format!("{:.2} vs {:.2} J/tok", greedy.energy_per_token_j, rr.energy_per_token_j),
    ));
    checks.push(Check::new(
        "…at no loss of SLO attainment",
        greedy.slo_attainment >= rr.slo_attainment,
        format!("{:.0}% vs {:.0}%", greedy.slo_attainment * 100.0, rr.slo_attainment * 100.0),
    ));

    // Fault tolerance: drop the strongest board mid-run, recover later.
    let faults = FaultPlan::none().outage(0, 5.0, 25.0);
    let cfg = FleetConfig { faults, ..fleet_config(false) };
    let dropped = run_fleet(mixed_fleet(), Box::new(JoinShortestQueue), cfg, &reqs)
        .expect("fleet members all load the model");
    let mut dt = Table::new(vec!["device", "routed", "done", "tokens", "energy J", "preempt"]);
    for d in &dropped.devices {
        dt.row(vec![
            d.name.clone(),
            d.routed.to_string(),
            d.completed.to_string(),
            d.output_tokens.to_string(),
            format!("{:.0}", d.energy_j),
            d.preemptions.to_string(),
        ]);
    }
    checks.push(Check::new(
        "a 20 s dropout of the strongest device loses zero requests",
        dropped.lost == 0 && dropped.completed == dropped.submitted,
        format!("{} completed, {} re-routed", dropped.completed, dropped.reroutes),
    ));
    checks.push(Check::new(
        "the outage forces in-flight work to be re-routed",
        dropped.reroutes > 0,
        format!("{} reroutes", dropped.reroutes),
    ));

    ExperimentResult {
        id: "ext-fleet",
        title: format!(
            "Extension — heterogeneous fleet serving ({} requests @ {RATE} req/s, \
             {SLO_S:.0} s SLO; dropout scenario: join-shortest-queue, device 0 down 5–25 s)",
            N_REQS
        ),
        tables: vec![t.render(), dt.render()],
        checks,
        csv: vec![("fleet_policies".to_string(), csv.to_csv())],
    }
}
