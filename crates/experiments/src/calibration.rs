//! Calibration provenance: re-derive the perf-model constants from the
//! embedded paper tables and check them against the values hardcoded in
//! `edgellm_perf::calib` — closing the loop between the documented fitting
//! procedure (DESIGN.md §4) and the shipped constants.

use crate::paper::{batch_sweep_truth, seq_sweep_truth};
use edgellm_core::Dataset;
use edgellm_hw::DeviceSpec;
use edgellm_models::{flops, Llm, Precision};
use edgellm_perf::calib::{
    PrecisionCosts, BW_EFFICIENCY, CTX_OVERHEAD_THRESHOLD, DECODE_EFF, OVERLAP_BETA, PREFILL_EFF,
};

/// The latency formula of the perf model, written out directly so the
/// re-derivation is independent of `PerfModel`'s implementation.
fn predict(llm: Llm, prec: Precision, host_s: f64, k2: f64, bs: u64, n_in: u64, n_out: u64) -> f64 {
    let dev = DeviceSpec::orin_agx_64gb();
    let arch = llm.arch();
    let costs = PrecisionCosts::of(prec);
    let bw = dev.memory.peak_bandwidth_gbps * 1e9 * BW_EFFICIENCY;
    let peak = dev.gpu.peak_fp16_tflops * 1e12;
    let t_w = arch.weight_bytes(prec) as f64 / bw;
    let f = flops::dense_flops_per_token(&arch) * costs.compute_mult;
    let pre_c = bs as f64 * n_in as f64 * f / (peak * PREFILL_EFF);
    let dec_c = bs as f64 * f / (peak * DECODE_EFF);
    let roofline = |a: f64, b: f64| a.max(b) + OVERLAP_BETA * a.min(b);
    let mut total = roofline(t_w, pre_c) + n_out as f64 * (host_s + roofline(t_w, dec_c));
    for i in 0..n_out {
        let ctx = n_in + i;
        let kv = ctx as f64 * arch.kv_bytes_per_token() as f64;
        let ov = ctx.saturating_sub(CTX_OVERHEAD_THRESHOLD) as f64 * k2;
        total += bs as f64 * (kv + ov) / bw;
    }
    total
}

/// Re-derived constants for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refit {
    /// Host seconds per decode step solved from the `bs=1` anchor.
    pub host_s: f64,
    /// Long-context overhead bytes solved from the long-sequence anchor.
    pub k2_bytes: f64,
}

/// Re-solve (host, k2) for a model exactly the way DESIGN.md §4 describes:
/// the `bs=1, sl=96` anchor of Table 4 fixes `host`, then the longest
/// feasible sequence row of Table 7 fixes `k2`.
pub fn refit(llm: Llm) -> Refit {
    let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
    let bs1 = batch_sweep_truth(Dataset::WikiText2)
        .iter()
        .find(|t| t.llm == llm)
        .expect("model in Table 4")
        .latency_s[0];
    // host from bs=1 (k2 irrelevant: ctx ≤ 96 < threshold).
    let zero_host = predict(llm, prec, 0.0, 0.0, 1, 32, 64);
    let host_s = (bs1 - zero_host) / 64.0;

    // k2 from the longest feasible Table 7 row.
    let seq = seq_sweep_truth(Dataset::WikiText2)
        .iter()
        .find(|t| t.llm == llm)
        .expect("model in Table 7");
    let (idx, target) = seq
        .latency_s
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|v| (i, v)))
        .next_back()
        .expect("at least one feasible row");
    let (n_in, n_out) = match [128u64, 256, 512, 1024][idx] {
        128 => (32u64, 96u64),
        256 => (64, 192),
        512 => (128, 384),
        _ => (256, 768),
    };
    let base = predict(llm, prec, host_s, 0.0, 32, n_in, n_out);
    let dev = DeviceSpec::orin_agx_64gb();
    let bw = dev.memory.peak_bandwidth_gbps * 1e9 * BW_EFFICIENCY;
    let excess: u64 = (0..n_out).map(|i| (n_in + i).saturating_sub(CTX_OVERHEAD_THRESHOLD)).sum();
    let k2_bytes = ((target - base) * bw / (32.0 * excess as f64)).max(0.0);
    Refit { host_s, k2_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_perf::calib::ModelCalib;

    #[test]
    fn refit_reproduces_the_shipped_constants() {
        for llm in Llm::ALL {
            let shipped = ModelCalib::for_llm(llm);
            let refit = refit(llm);
            // DeepSeek's shipped host is decomposed into base + per-layer
            // INT8 dispatch; reconstruct the total for comparison.
            let shipped_host = shipped.host_s
                + if llm == Llm::DeepseekQwen32b { 64.0 * shipped.int8_layer_s } else { 0.0 };
            let dh = (refit.host_s - shipped_host).abs() / shipped_host;
            assert!(
                dh < 0.02,
                "{llm:?}: refit host {:.4}s vs shipped {:.4}s",
                refit.host_s,
                shipped_host
            );
            let dk = (refit.k2_bytes - shipped.k2_bytes).abs() / shipped.k2_bytes;
            assert!(
                dk < 0.05,
                "{llm:?}: refit k2 {:.0} vs shipped {:.0}",
                refit.k2_bytes,
                shipped.k2_bytes
            );
        }
    }

    #[test]
    fn refit_constants_are_physical() {
        for llm in Llm::ALL {
            let r = refit(llm);
            assert!(r.host_s > 0.0 && r.host_s < 1.0, "{llm:?}: host {}", r.host_s);
            assert!(r.k2_bytes > 0.0 && r.k2_bytes < 100e6, "{llm:?}: k2 {}", r.k2_bytes);
        }
    }

    #[test]
    fn independent_formula_matches_perf_model() {
        // The re-derivation formula here must agree with PerfModel itself.
        use edgellm_perf::PerfModel;
        let dev = DeviceSpec::orin_agx_64gb();
        for llm in Llm::ALL {
            let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
            let c = ModelCalib::for_llm(llm);
            let host = c.host_s
                + PrecisionCosts::of(prec).dispatch_frac
                    * c.int8_layer_s
                    * llm.arch().layers as f64;
            let ours = predict(llm, prec, host, c.k2_bytes, 32, 32, 64);
            let theirs =
                PerfModel::new(dev.clone(), llm, prec, dev.max_clocks()).latency_s(32, 32, 64);
            assert!((ours - theirs).abs() / theirs < 1e-9, "{llm:?}: {ours} vs {theirs}");
        }
    }
}
