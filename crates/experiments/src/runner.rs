//! Experiment registry and runner.

use crate::report::ExperimentResult;
use edgellm_core::{Dataset, Protocol};
use edgellm_models::Llm;

/// Which online policy `ext-governor` exports to the trace sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GovernorChoice {
    /// The hysteretic SLO ladder (the headline policy).
    #[default]
    Ladder,
    /// The energy-budget enforcer.
    Budget,
    /// The thermal-headroom governor.
    Thermal,
}

impl std::str::FromStr for GovernorChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ladder" => Ok(GovernorChoice::Ladder),
            "budget" => Ok(GovernorChoice::Budget),
            "thermal" => Ok(GovernorChoice::Thermal),
            other => Err(format!("unknown governor policy {other:?} (ladder|budget|thermal)")),
        }
    }
}

/// Options shared by all drivers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExperimentOpts {
    /// Use the quick protocol and trimmed training (smoke mode).
    pub fast: bool,
    /// Policy whose governed run `ext-governor` records to the trace
    /// sink (`--governor ladder|budget|thermal`).
    pub governor: GovernorChoice,
}

impl ExperimentOpts {
    fn protocol(&self) -> Protocol {
        if self.fast {
            Protocol::quick()
        } else {
            Protocol::paper()
        }
    }
}

/// All experiment ids, in paper order.
pub const EXPERIMENT_IDS: [&str; 22] = [
    "tab1",
    "tab2",
    "fig1",
    "fig7",
    "fig2",
    "fig9",
    "fig3",
    "tab3",
    "fig4",
    "fig10",
    "fig5",
    "ext-engine",
    "ext-devices",
    "ext-serving",
    "ext-chunked",
    "ext-pmsearch",
    "ext-offload",
    "ext-thermal",
    "ext-fleet",
    "ext-governor",
    "ext-prefix",
    "ext-spec",
];

/// Human description of each experiment.
pub fn describe(id: &str) -> Option<&'static str> {
    Some(match id {
        "tab1" => "Table 1: model weight memory per precision",
        "tab2" => "Table 2: power-mode configurations",
        "fig1" => "Fig 1/6 + Table 4: batch sweep (WikiText2)",
        "fig7" => "Fig 7 + Table 5: batch sweep (LongBench)",
        "fig2" => "Fig 2/8 + Table 6: sequence sweep (LongBench)",
        "fig9" => "Fig 9 + Table 7: sequence sweep (WikiText2)",
        "fig3" => "Fig 3/11: quantization impact on perf/memory",
        "tab3" => "Table 3: perplexity vs precision (real training)",
        "fig4" => "Fig 4: power & energy vs batch × precision (Llama)",
        "fig10" => "Fig 10: power & energy vs batch × precision (all)",
        "fig5" => "Fig 5: the nine power modes",
        "ext-engine" => "Extension: optimized-inference-engine headroom",
        "ext-devices" => "Extension: Jetson device-family sweep",
        "ext-serving" => "Extension: continuous vs static batching",
        "ext-chunked" => "Extension: event scheduler — chunked prefill vs blocking",
        "ext-pmsearch" => "Extension: minimum-energy power-mode search",
        "ext-offload" => "Extension: edge inference vs cloud offload",
        "ext-thermal" => "Extension: sustained serving under thermal limits",
        "ext-fleet" => "Extension: heterogeneous fleet serving — routing, faults, offload",
        "ext-governor" => "Extension: online SLO-aware power-mode governor vs static modes",
        "ext-prefix" => "Extension: radix prefix cache — shared-system-prompt ratio sweep",
        "ext-spec" => "Extension: speculative draft-and-verify decode — k × α sweep (Phi-2)",
        _ => return None,
    })
}

/// List `(id, description)` pairs.
pub fn list_experiments() -> Vec<(&'static str, &'static str)> {
    EXPERIMENT_IDS.iter().map(|&id| (id, describe(id).expect("known id"))).collect()
}

/// Run one experiment by id. Returns `None` for an unknown id.
pub fn run_experiment(id: &str, opts: ExperimentOpts) -> Option<ExperimentResult> {
    let p = opts.protocol();
    Some(match id {
        "tab1" => crate::tab1::run(64.0),
        "tab2" => crate::tab2::run(),
        "fig1" => crate::batch_sweep::run(Dataset::WikiText2, p),
        "fig7" => crate::batch_sweep::run(Dataset::LongBench, p),
        "fig2" => crate::seqlen_sweep::run(Dataset::LongBench, p),
        "fig9" => crate::seqlen_sweep::run(Dataset::WikiText2, p),
        "fig3" => crate::quant_perf::run(p),
        "tab3" => crate::perplexity::run(opts.fast),
        "fig4" => crate::power_energy::run(&[Llm::Llama31_8b], p),
        "fig10" => crate::power_energy::run(&Llm::ALL, p),
        "fig5" => crate::power_modes::run(p),
        "ext-engine" => crate::extensions::optimized_engine(),
        "ext-devices" => crate::extensions::device_family(),
        "ext-serving" => crate::extensions::serving_comparison(),
        "ext-chunked" => crate::serve::run(),
        "ext-pmsearch" => crate::extensions::power_mode_search(),
        "ext-offload" => crate::extensions::offload_analysis(),
        "ext-thermal" => crate::extensions::thermal_sustained(),
        "ext-fleet" => crate::fleet::run(),
        "ext-governor" => crate::governor::run(opts),
        "ext-prefix" => crate::prefix::run(),
        "ext-spec" => crate::spec::run(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_is_described_and_listed() {
        assert_eq!(list_experiments().len(), EXPERIMENT_IDS.len());
        for id in EXPERIMENT_IDS {
            assert!(describe(id).is_some());
        }
        assert!(describe("nope").is_none());
    }

    #[test]
    fn unknown_experiment_returns_none() {
        assert!(
            run_experiment("nope", ExperimentOpts { fast: true, ..Default::default() }).is_none()
        );
    }

    #[test]
    fn quick_experiment_runs_end_to_end() {
        let r =
            run_experiment("tab2", ExperimentOpts { fast: true, ..Default::default() }).unwrap();
        assert!(r.all_pass());
    }
}
