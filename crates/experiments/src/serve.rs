//! `serve`: static vs blocking-prefill vs chunked-prefill serving on the
//! paper's four models — the iteration-level scheduler extension.
//!
//! The paper measures the static HF-generate regime; its conclusion
//! points at "dedicated inference engines" as the head-room. This driver
//! quantifies that head-room one scheduler feature at a time: iteration-
//! level batching with blocking prefills, then chunked prefill fused into
//! the decode batch, under the same Poisson arrivals.

use crate::batch_sweep::serving_precision;
use crate::report::{Check, ExperimentResult, Table};
use edgellm_core::serve::{EventScheduler, ServeConfig};
use edgellm_core::{ContinuousBatcher, ContinuousReport, PoissonArrivals, RunConfig};
use edgellm_hw::DeviceSpec;
use edgellm_models::Llm;

/// Arrival rate exercising queue pressure (req/s) — the acceptance load.
const RATE: f64 = 1.5;
/// Requests per policy per model — enough for real queueing at `RATE`.
const N_REQS: usize = 60;
/// Arrival seed.
const SEED: u64 = 2;

/// Run the serving-policy comparison.
pub fn run() -> ExperimentResult {
    let dev = DeviceSpec::orin_agx_64gb();
    let mut t = Table::new(vec![
        "model",
        "policy",
        "mean lat s",
        "p95 lat s",
        "mean TTFT s",
        "p99 TTFT s",
        "stall s",
        "energy J",
        "preempt",
    ]);
    let mut csv = Table::new(vec![
        "model",
        "policy",
        "mean_lat_s",
        "p95_lat_s",
        "mean_ttft_s",
        "p50_ttft_s",
        "p99_ttft_s",
        "stall_s",
        "energy_j",
        "preemptions",
    ]);
    let mut checks = Vec::new();
    let mut llama: Option<(ContinuousReport, ContinuousReport)> = None;
    for llm in Llm::ALL {
        let cfg = RunConfig::new(llm, serving_precision(llm));
        let reqs = PoissonArrivals::paper_shape(RATE).generate(N_REQS, SEED);
        let stat = ContinuousBatcher::new(16).run_static(&dev, &cfg, &reqs).expect("fits");
        let block = EventScheduler::new(ServeConfig::blocking(16))
            .run(&dev, &cfg, &reqs)
            .expect("fits")
            .report;
        let chunked = EventScheduler::new(ServeConfig::chunked(16))
            .run(&dev, &cfg, &reqs)
            .expect("fits")
            .report;
        for (policy, r) in [("static", &stat), ("blocking", &block), ("chunked", &chunked)] {
            t.row(vec![
                llm.short_name().to_string(),
                policy.to_string(),
                format!("{:.1}", r.mean_latency_s),
                format!("{:.1}", r.p95_latency_s),
                format!("{:.2}", r.mean_ttft_s),
                format!("{:.2}", r.p99_ttft_s),
                format!("{:.2}", r.prefill_stall_s),
                format!("{:.0}", r.energy_j),
                r.preemptions.to_string(),
            ]);
            csv.row(vec![
                llm.short_name().to_string(),
                policy.to_string(),
                format!("{:.3}", r.mean_latency_s),
                format!("{:.3}", r.p95_latency_s),
                format!("{:.4}", r.mean_ttft_s),
                format!("{:.4}", r.p50_ttft_s),
                format!("{:.4}", r.p99_ttft_s),
                format!("{:.4}", r.prefill_stall_s),
                format!("{:.1}", r.energy_j),
                r.preemptions.to_string(),
            ]);
        }
        checks.push(Check::new(
            format!("{}: every request completes under all three policies", llm.short_name()),
            stat.requests == N_REQS && block.requests == N_REQS && chunked.requests == N_REQS,
            format!("{}/{}/{}", stat.requests, block.requests, chunked.requests),
        ));
        checks.push(Check::new(
            format!("{}: chunked prefill stalls decode less than blocking", llm.short_name()),
            chunked.prefill_stall_s < block.prefill_stall_s,
            format!("{:.2}s vs {:.2}s", chunked.prefill_stall_s, block.prefill_stall_s),
        ));
        if llm == Llm::Llama31_8b {
            llama = Some((block, chunked));
        }
    }
    let (block, chunked) = llama.expect("Llama ran");
    checks.push(Check::new(
        format!("Llama FP16 at {RATE} req/s: chunked prefill cuts mean TTFT vs blocking"),
        chunked.mean_ttft_s < block.mean_ttft_s,
        format!("{:.3}s vs {:.3}s", chunked.mean_ttft_s, block.mean_ttft_s),
    ));
    checks.push(Check::new(
        "iteration-level energy accounting is live (positive, finite)".to_string(),
        block.energy_j > 0.0 && chunked.energy_j > 0.0 && chunked.energy_j.is_finite(),
        format!("{:.0} J / {:.0} J", block.energy_j, chunked.energy_j),
    ));
    ExperimentResult {
        id: "ext-chunked",
        title: "Extension — event-driven scheduler: static vs blocking vs chunked prefill"
            .to_string(),
        tables: vec![t.render()],
        checks,
        csv: vec![("serve_policies".to_string(), csv.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_experiment_passes() {
        let r = run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
