//! Ground-truth values transcribed from the paper, used by every driver to
//! print side-by-side comparisons and run shape checks.
//!
//! Sources: Table 1 (model memory), Table 2 (power modes), Table 3
//! (perplexity), Table 4/5 (batch sweeps on WikiText2/LongBench), Table 6/7
//! (sequence sweeps on LongBench/WikiText2), and the §3.x prose claims.

use edgellm_core::Dataset;
use edgellm_models::Llm;

/// `None` marks an OoM cell in the paper.
pub type Cell = Option<f64>;

/// The batch sizes of the batch sweeps (powers of two).
pub const BATCH_SIZES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The sequence lengths of the sequence sweeps.
pub const SEQ_LENS: [u64; 4] = [128, 256, 512, 1024];

/// One model's batch-sweep row set: RAM (GB), latency (s), throughput
/// (tok/s) per batch size.
#[derive(Debug, Clone, Copy)]
pub struct BatchSweepTruth {
    /// Which model.
    pub llm: Llm,
    /// RAM (GB) per batch size.
    pub ram_gb: [f64; 8],
    /// Latency (s) per batch size. (The paper's table header says "ms" but
    /// the magnitudes are seconds — e.g. Llama3 bs=32 latency 9.96 with
    /// 308 tok/s on 3072 tokens only works in seconds.)
    pub latency_s: [f64; 8],
    /// Throughput (tokens/s) per batch size.
    pub throughput: [f64; 8],
}

/// Table 4: WikiText2 batch sweep (MaxN, sl=96; FP16, DeepQ INT8).
pub const TABLE4: [BatchSweepTruth; 4] = [
    BatchSweepTruth {
        llm: Llm::Phi2,
        ram_gb: [6.18, 6.24, 6.36, 6.48, 6.87, 8.05, 11.57, 20.53],
        latency_s: [3.73, 3.95, 3.95, 3.95, 4.09, 5.19, 7.59, 12.85],
        throughput: [25.45, 48.66, 96.24, 194.59, 375.88, 591.68, 809.96, 956.61],
    },
    BatchSweepTruth {
        llm: Llm::Llama31_8b,
        ram_gb: [16.38, 16.42, 16.45, 16.53, 16.72, 17.12, 17.91, 19.26],
        latency_s: [6.37, 6.66, 6.87, 7.37, 8.33, 9.96, 14.04, 21.99],
        throughput: [15.08, 28.82, 55.91, 104.27, 184.39, 308.47, 437.47, 558.87],
    },
    BatchSweepTruth {
        llm: Llm::MistralSmall24b,
        ram_gb: [47.33, 47.36, 47.44, 47.59, 47.74, 47.99, 48.77, 50.08],
        latency_s: [18.51, 18.3, 18.74, 19.54, 21.29, 39.12, 48.84, 66.53],
        throughput: [5.19, 8.96, 20.49, 39.3, 72.16, 78.52, 125.79, 184.69],
    },
    BatchSweepTruth {
        llm: Llm::DeepseekQwen32b,
        ram_gb: [34.82, 35.24, 35.72, 36.76, 38.25, 40.87, 43.23, 44.35],
        latency_s: [43.25, 46.97, 48.97, 47.73, 69.81, 47.92, 61.05, 83.69],
        throughput: [2.22, 4.09, 7.84, 16.09, 22.0, 64.11, 100.65, 146.83],
    },
];

/// Table 5: LongBench batch sweep (same setup).
pub const TABLE5: [BatchSweepTruth; 4] = [
    BatchSweepTruth {
        llm: Llm::Phi2,
        ram_gb: [6.09, 6.1, 6.13, 6.13, 6.22, 7.42, 10.94, 19.91],
        latency_s: [3.62, 3.64, 3.63, 3.65, 3.85, 4.93, 7.12, 11.97],
        throughput: [26.54, 52.73, 105.72, 210.17, 398.99, 623.2, 863.01, 1026.76],
    },
    BatchSweepTruth {
        llm: Llm::Llama31_8b,
        ram_gb: [16.37, 16.46, 16.46, 16.53, 16.73, 17.14, 17.91, 19.27],
        latency_s: [6.36, 6.59, 6.77, 7.26, 8.19, 9.76, 13.65, 21.21],
        throughput: [15.08, 29.13, 56.69, 105.84, 187.59, 314.6, 450.12, 579.4],
    },
    BatchSweepTruth {
        llm: Llm::MistralSmall24b,
        ram_gb: [47.77, 47.73, 47.89, 48.03, 48.18, 48.4, 49.1, 50.55],
        latency_s: [18.53, 18.3, 18.63, 19.43, 21.14, 39.05, 48.44, 65.83],
        throughput: [5.18, 10.49, 20.61, 39.53, 72.66, 78.67, 126.83, 186.67],
    },
    BatchSweepTruth {
        llm: Llm::DeepseekQwen32b,
        ram_gb: [34.74, 35.11, 35.72, 36.94, 37.97, 39.76, 41.9, 43.06],
        latency_s: [43.42, 46.58, 48.11, 47.01, 69.13, 46.52, 58.86, 80.61],
        throughput: [2.21, 4.12, 7.98, 16.34, 22.22, 66.04, 104.39, 152.43],
    },
];

/// One model's sequence-sweep rows (`None` = OoM).
#[derive(Debug, Clone, Copy)]
pub struct SeqSweepTruth {
    /// Which model.
    pub llm: Llm,
    /// RAM (GB) per sequence length.
    pub ram_gb: [Cell; 4],
    /// Latency (s) per sequence length.
    pub latency_s: [Cell; 4],
    /// Throughput (tok/s) per sequence length.
    pub throughput: [Cell; 4],
}

/// Table 6: LongBench sequence sweep (bs=32, MaxN).
pub const TABLE6: [SeqSweepTruth; 4] = [
    SeqSweepTruth {
        llm: Llm::Phi2,
        ram_gb: [Some(6.97), Some(20.7), None, None],
        latency_s: [Some(7.74), Some(21.26), None, None],
        throughput: [Some(529.04), Some(385.32), None, None],
    },
    SeqSweepTruth {
        llm: Llm::Llama31_8b,
        ram_gb: [Some(17.24), Some(18.26), Some(21.17), Some(29.37)],
        latency_s: [Some(15.09), Some(37.37), Some(101.02), Some(305.36)],
        throughput: [Some(271.5), Some(219.21), Some(162.18), Some(107.31)],
    },
    SeqSweepTruth {
        llm: Llm::MistralSmall24b,
        ram_gb: [Some(48.24), Some(49.0), Some(50.86), Some(54.48)],
        latency_s: [Some(57.51), Some(123.64), Some(281.3), Some(694.74)],
        throughput: [Some(71.22), Some(66.26), Some(58.24), Some(47.17)],
    },
    SeqSweepTruth {
        llm: Llm::DeepseekQwen32b,
        ram_gb: [Some(34.56), Some(39.58), Some(42.17), Some(46.91)],
        latency_s: [Some(97.72), Some(257.02), Some(679.31), Some(1646.36)],
        throughput: [Some(41.91), Some(31.88), Some(24.12), Some(19.9)],
    },
];

/// Table 7: WikiText2 sequence sweep (bs=32, MaxN).
pub const TABLE7: [SeqSweepTruth; 4] = [
    SeqSweepTruth {
        llm: Llm::Phi2,
        ram_gb: [Some(9.19), Some(19.98), None, None],
        latency_s: [Some(7.74), Some(21.03), None, None],
        throughput: [Some(529.31), Some(389.48), None, None],
    },
    SeqSweepTruth {
        llm: Llm::Llama31_8b,
        ram_gb: [Some(17.2), Some(18.77), Some(20.99), Some(29.13)],
        latency_s: [Some(14.99), Some(37.23), Some(100.69), Some(304.33)],
        throughput: [Some(273.18), Some(220.02), Some(162.71), Some(107.67)],
    },
    SeqSweepTruth {
        llm: Llm::MistralSmall24b,
        ram_gb: [Some(48.15), Some(49.0), Some(50.81), Some(54.66)],
        latency_s: [Some(57.35), Some(123.31), Some(280.48), Some(693.13)],
        throughput: [Some(71.42), Some(66.43), Some(58.41), Some(47.28)],
    },
    SeqSweepTruth {
        llm: Llm::DeepseekQwen32b,
        ram_gb: [Some(40.49), Some(41.38), Some(43.28), Some(46.1)],
        latency_s: [Some(93.04), Some(249.24), Some(667.08), Some(1681.75)],
        throughput: [Some(44.03), Some(32.87), Some(24.56), Some(19.48)],
    },
];

/// Fetch the batch-sweep truth for a dataset.
pub fn batch_sweep_truth(ds: Dataset) -> &'static [BatchSweepTruth; 4] {
    match ds {
        Dataset::WikiText2 => &TABLE4,
        Dataset::LongBench => &TABLE5,
    }
}

/// Fetch the sequence-sweep truth for a dataset.
pub fn seq_sweep_truth(ds: Dataset) -> &'static [SeqSweepTruth; 4] {
    match ds {
        Dataset::WikiText2 => &TABLE7,
        Dataset::LongBench => &TABLE6,
    }
}

/// Table 1: weight memory (GB) per model × [FP32, FP16, INT8, INT4]; red
/// (estimate/unloadable) cells flagged.
pub const TABLE1: [(Llm, [f64; 4], [bool; 4]); 4] = [
    (Llm::Phi2, [11.2, 5.6, 3.0, 1.8], [true, true, true, true]),
    (Llm::Llama31_8b, [32.2, 16.1, 9.1, 5.6], [true, true, true, true]),
    (Llm::MistralSmall24b, [94.2, 47.1, 24.9, 13.8], [false, true, true, true]),
    (Llm::DeepseekQwen32b, [124.0, 62.0, 34.3, 18.7], [false, false, true, true]),
];

/// Table 3: perplexity per model × [FP32, FP16, INT8, INT4], WikiText2
/// then LongBench (`None` = OoM).
pub const TABLE3: [(Llm, [Cell; 4], [Cell; 4]); 4] = [
    (
        Llm::Phi2,
        [Some(9.12), Some(9.12), Some(9.34), Some(9.69)],
        [Some(7.35), Some(7.35), Some(7.47), Some(7.65)],
    ),
    (
        Llm::Llama31_8b,
        [Some(5.91), Some(5.91), Some(6.00), Some(6.30)],
        [Some(5.77), Some(5.77), Some(5.80), Some(5.99)],
    ),
    (
        Llm::MistralSmall24b,
        [None, Some(4.99), Some(5.00), Some(5.08)],
        [None, Some(4.95), Some(4.97), Some(5.11)],
    ),
    (
        Llm::DeepseekQwen32b,
        [None, None, Some(6.36), Some(6.48)],
        [None, None, Some(6.42), Some(6.53)],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_is_internally_consistent() {
        // Throughput ≈ bs·96/latency for the batch sweeps (±2% transcription
        // rounding).
        // The paper's own tables contain a few inconsistent cells (e.g.
        // Table 4 Mistral bs=2 prints 8.96 tok/s where 96·2/18.3 = 10.5);
        // require consistency for all but at most two cells overall.
        let mut bad = 0;
        for t in TABLE4.iter().chain(TABLE5.iter()) {
            for (i, &bs) in BATCH_SIZES.iter().enumerate() {
                let tp = bs as f64 * 96.0 / t.latency_s[i];
                let rel = (tp - t.throughput[i]).abs() / t.throughput[i];
                if rel >= 0.06 {
                    bad += 1;
                }
            }
        }
        assert!(bad <= 2, "{bad} inconsistent ground-truth cells");
    }

    #[test]
    fn seq_sweep_oom_cells_are_phi2_only() {
        for t in TABLE6.iter().chain(TABLE7.iter()) {
            let ooms = t.latency_s.iter().filter(|c| c.is_none()).count();
            if t.llm == Llm::Phi2 {
                assert_eq!(ooms, 2, "Phi-2 OoM at 512 and 1024");
            } else {
                assert_eq!(ooms, 0);
            }
        }
    }

    #[test]
    fn table3_perplexity_shapes() {
        for (llm, wiki, lb) in TABLE3 {
            for row in [wiki, lb] {
                let vals: Vec<f64> = row.iter().flatten().copied().collect();
                // Monotone non-decreasing down the precision ladder.
                for w in vals.windows(2) {
                    assert!(w[1] >= w[0] - 1e-9, "{llm:?}: {vals:?}");
                }
            }
        }
    }
}
