//! One bench target per paper table/figure.
//!
//! Each target regenerates its artifact once through the experiment driver
//! (printing the paper-vs-ours rows) and then measures the representative
//! simulation unit with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use edgellm_bench::support::{default_cfg, engine};
use edgellm_core::{Dataset, RunConfig, SequenceSpec};
use edgellm_experiments::runner::{run_experiment, ExperimentOpts};
use edgellm_models::footprint::table1;
use edgellm_models::{Llm, Precision};
use std::hint::black_box;
use std::sync::Once;

/// Print each artifact once, not once per Criterion sample.
fn print_once(id: &str) {
    // One static per artifact would be noisy; a single global set works.
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        *PRINTED.lock().unwrap() = Some(HashSet::new());
    });
    let mut guard = PRINTED.lock().unwrap();
    let set = guard.as_mut().expect("initialized");
    if set.insert(id.to_string()) {
        drop(guard);
        let r = run_experiment(id, ExperimentOpts { fast: true, ..Default::default() })
            .expect("known id");
        println!("{}", r.render());
    }
}

fn bench_tab1(c: &mut Criterion) {
    print_once("tab1");
    c.bench_function("tab1/model_memory_table", |b| b.iter(|| black_box(table1(black_box(64.0)))));
}

fn bench_tab2(c: &mut Criterion) {
    print_once("tab2");
    c.bench_function("tab2/power_mode_registry", |b| {
        b.iter(|| {
            edgellm_hw::PowerModeRegistry::with_table2(edgellm_hw::DeviceSpec::orin_agx_64gb())
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    print_once("fig1");
    let e = engine();
    let mut g = c.benchmark_group("fig1/batch_sweep_wikitext2");
    for bs in [1u64, 32, 128] {
        g.bench_function(format!("llama_bs{bs}"), |b| {
            let cfg = default_cfg(Llm::Llama31_8b).batch_size(bs);
            b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    print_once("fig7");
    let e = engine();
    c.bench_function("fig7/batch_sweep_longbench_llama_bs32", |b| {
        let cfg = default_cfg(Llm::Llama31_8b).dataset(Dataset::LongBench);
        b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
    });
}

fn bench_fig2(c: &mut Criterion) {
    print_once("fig2");
    let e = engine();
    let mut g = c.benchmark_group("fig2/seqlen_sweep_longbench");
    for sl in [128u64, 1024] {
        g.bench_function(format!("llama_sl{sl}"), |b| {
            let cfg = default_cfg(Llm::Llama31_8b)
                .sequence(SequenceSpec::paper_sweep(sl))
                .dataset(Dataset::LongBench);
            b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    print_once("fig9");
    let e = engine();
    c.bench_function("fig9/seqlen_sweep_wikitext2_mistral_sl512", |b| {
        let cfg = default_cfg(Llm::MistralSmall24b).sequence(SequenceSpec::paper_sweep(512));
        b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
    });
}

fn bench_fig3(c: &mut Criterion) {
    print_once("fig3");
    let e = engine();
    let mut g = c.benchmark_group("fig3/quantization");
    for prec in [Precision::Fp16, Precision::Int8, Precision::Int4] {
        g.bench_function(format!("llama_{}", prec.label()), |b| {
            let cfg = RunConfig::new(Llm::Llama31_8b, prec);
            b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

fn bench_tab3(c: &mut Criterion) {
    print_once("tab3");
    // Measure the perplexity evaluator itself on a small trained model.
    use edgellm_core::perplexity::sliding_window_perplexity;
    use edgellm_nn::{MlpLm, MlpLmConfig};
    let mut m = MlpLm::new(MlpLmConfig { vocab: 256, context: 4, d_emb: 16, hidden: 32, seed: 1 });
    let stream: Vec<u32> = (0..8000).map(|i| ((i * 31 + i / 5) % 256) as u32).collect();
    m.train(&stream, 100, 32, 3e-3, 2);
    c.bench_function("tab3/sliding_window_perplexity_8k_tokens", |b| {
        b.iter(|| sliding_window_perplexity(&m, black_box(&stream)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    print_once("fig4");
    let e = engine();
    c.bench_function("fig4/power_energy_llama_int8_bs128", |b| {
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Int8).batch_size(128);
        b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
    });
}

fn bench_fig10(c: &mut Criterion) {
    print_once("fig10");
    let e = engine();
    c.bench_function("fig10/power_energy_all_models_bs32", |b| {
        b.iter(|| {
            for llm in Llm::ALL {
                let _ = e.run_batch(black_box(&default_cfg(llm)));
            }
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    print_once("fig5");
    let e = engine();
    let mut g = c.benchmark_group("fig5/power_modes");
    for id in
        [edgellm_hw::PowerModeId::MaxN, edgellm_hw::PowerModeId::B, edgellm_hw::PowerModeId::H]
    {
        g.bench_function(format!("llama_pm_{}", id.name()), |b| {
            let cfg = default_cfg(Llm::Llama31_8b).power_mode(edgellm_hw::PowerMode::table2(id));
            b.iter(|| e.run_batch(black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = bench_tab1, bench_tab2, bench_fig1, bench_fig7, bench_fig2,
        bench_fig9, bench_fig3, bench_tab3, bench_fig4, bench_fig10, bench_fig5
}
criterion_main!(tables);
