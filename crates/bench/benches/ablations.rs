//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! Each ablation prints its comparison once (the quantity of interest is
//! usually accuracy/footprint, not time) and Criterion-measures the
//! alternatives where speed is the trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use edgellm_hw::DeviceSpec;
use edgellm_mem::{ActivationCalib, KvBlockAllocator, MemoryModel};
use edgellm_models::{Llm, Precision};
use edgellm_perf::{ModelCalib, PerfModel};
use edgellm_tensor::{matmul::matmul_nt, Matrix, QInt8Matrix};
use std::hint::black_box;

/// LLM.int8() outlier decomposition on/off: accuracy vs speed.
fn ablate_outlier_decomposition(c: &mut Criterion) {
    let mut w = Matrix::rand_normal(512, 256, 0.05, 1);
    // Plant outlier feature columns like real transformer activations have.
    for r in 0..512 {
        w.set(r, 17, 1.5);
        w.set(r, 200, -1.2);
    }
    let x = Matrix::rand_kaiming(32, 256, 2);
    let exact = matmul_nt(&x, &w);
    let with = QInt8Matrix::from_f32(&w);
    let without = QInt8Matrix::from_f32_with_factor(&w, f32::INFINITY);
    let err = |m: &Matrix| -> f64 {
        m.as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / m.len() as f64
    };
    println!(
        "[ablate_outlier_decomposition] mse with outliers: {:.3e} ({} cols), without: {:.3e}",
        err(&with.matmul_nt(&x)),
        with.n_outliers(),
        err(&without.matmul_nt(&x)),
    );
    let mut g = c.benchmark_group("ablate_outlier_decomposition");
    g.bench_function("with_outliers", |b| b.iter(|| with.matmul_nt(black_box(&x))));
    g.bench_function("pure_int8", |b| b.iter(|| without.matmul_nt(black_box(&x))));
    g.finish();
}

/// Host-overhead term zeroed: shows why a pure roofline mispredicts Jetson
/// latencies (the paper's CPU-frequency sensitivity, §3.4, vanishes).
fn ablate_host_overhead(c: &mut Criterion) {
    let dev = DeviceSpec::orin_agx_64gb();
    let clocks = dev.max_clocks();
    let full = PerfModel::new(dev.clone(), Llm::DeepseekQwen32b, Precision::Int8, clocks);
    let mut calib = ModelCalib::for_llm(Llm::DeepseekQwen32b);
    calib.host_s = 0.0;
    calib.int8_layer_s = 0.0;
    let roofline =
        PerfModel::with_calib(dev.clone(), Llm::DeepseekQwen32b, Precision::Int8, clocks, calib);
    println!(
        "[ablate_host_overhead] DeepSeek bs=1 sl=96: full model {:.1}s (paper: 43.25s), \
         pure roofline {:.1}s — the host/dispatch term carries the difference",
        full.latency_s(1, 32, 64),
        roofline.latency_s(1, 32, 64),
    );
    let mut g = c.benchmark_group("ablate_host_overhead");
    g.bench_function("full_model", |b| b.iter(|| full.latency_s(32, 32, 64)));
    g.bench_function("pure_roofline", |b| b.iter(|| roofline.latency_s(32, 32, 64)));
    g.finish();
}

/// GQA vs MHA KV footprint: why Phi-2 (MHA + FP32 cache) OoMs first.
fn ablate_gqa(_c: &mut Criterion) {
    let mut mha = Llm::Llama31_8b.arch();
    mha.kv_heads = mha.heads; // hypothetical MHA Llama
    let gqa = Llm::Llama31_8b.arch();
    let per_tok = |a: &edgellm_models::ModelArch| a.kv_bytes_per_token() as f64 / 1e3;
    println!(
        "[ablate_gqa] Llama-3.1 KV/token: GQA {:.0} KB vs hypothetical MHA {:.0} KB \
         (×{:.0}); Phi-2 (MHA+FP32 cache) {:.0} KB — the Table 6/7 OoM mechanism",
        per_tok(&gqa),
        per_tok(&mha),
        per_tok(&mha) / per_tok(&gqa),
        Llm::Phi2.arch().kv_bytes_per_token() as f64 / 1e3,
    );
}

/// Paged vs contiguous KV reservation: fragmentation head-room.
fn ablate_kv_paging(c: &mut Criterion) {
    // Contiguous: every sequence reserves max-context up front. Paged:
    // blocks on demand. Compare how many 96-token sequences fit in 8 GB.
    let bytes_per_token = Llm::Llama31_8b.arch().kv_bytes_per_token();
    let pool: u64 = 8 << 30;
    let max_ctx = 1024u64;
    let contiguous_fit = pool / (max_ctx * bytes_per_token);
    let mut paged = KvBlockAllocator::new(pool, 16, bytes_per_token);
    let mut paged_fit = 0u32;
    loop {
        paged.register(paged_fit);
        if paged.append(paged_fit, 96).is_err() {
            break;
        }
        paged_fit += 1;
    }
    println!(
        "[ablate_kv_paging] 8 GB KV pool, 96-token sequences: contiguous \
         (1024-token reservations) fits {contiguous_fit}, paged fits {paged_fit} \
         (fragmentation {:.1}%)",
        paged.fragmentation() * 100.0
    );
    c.bench_function("ablate_kv_paging/paged_append_96tok", |b| {
        b.iter(|| {
            let mut a = KvBlockAllocator::new(1 << 26, 16, bytes_per_token);
            a.register(0);
            a.append(0, 96).unwrap();
            black_box(a.reserved_bytes())
        })
    });
}

/// Quadratic activation term on/off vs the paper's Phi-2 memory column.
fn ablate_quadratic_activations(_c: &mut Criterion) {
    let with = MemoryModel::new(Llm::Phi2, Precision::Fp16, 64.0);
    let mut no_quad = ActivationCalib::for_llm(Llm::Phi2);
    no_quad.c_quad = 0.0;
    let arch = Llm::Phi2.arch();
    let linear_only = |bs: u64, sl: u64| {
        (arch.weight_bytes(Precision::Fp16) as f64
            + (bs * sl * arch.kv_bytes_per_token()) as f64
            + no_quad.bytes(bs, sl))
            / 1e9
    };
    println!("[ablate_quadratic_activations] Phi-2 peak GB at bs=32 (paper Table 7):");
    for (sl, paper) in [(128u64, Some(9.19)), (256, Some(19.98)), (512, None)] {
        let p = paper.map_or("OOM".to_string(), |v| format!("{v:.1}"));
        println!(
            "  sl={sl:4}: quadratic {:.1} GB, linear-only {:.1} GB, paper {p}",
            with.peak_total_gb(32, sl),
            linear_only(32, sl),
        );
    }
    println!(
        "  → without the quadratic term Phi-2 would wrongly fit at sl=512 \
         ({:.1} GB < 62 GB usable)",
        linear_only(32, 512)
    );
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = ablate_outlier_decomposition, ablate_host_overhead, ablate_gqa,
        ablate_kv_paging, ablate_quadratic_activations
}
criterion_main!(ablations);
