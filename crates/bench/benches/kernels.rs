//! Kernel microbenchmarks on the *executable* substrate.
//!
//! The headline here is the real-code-path version of the paper's §3.3
//! finding: on transformer-shaped weights, the INT8 (outlier-decomposed)
//! and INT4 (NF4 dequantizing) products pay real per-element overheads
//! that FP32/FP16 do not — quantization trades memory for arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use edgellm_corpus::{BpeTokenizer, CorpusKind, SyntheticCorpus};
use edgellm_nn::{TinyCausalLm, TinyConfig, WeightPrecision};
use edgellm_quant::QuantizedWeights;
use edgellm_tensor::{matmul::matmul_nt, F16Matrix, Matrix, QInt4Matrix, QInt8Matrix};
use std::hint::black_box;

/// Transformer-ish GEMM shape: (batch×hidden)·(ffn×hidden)ᵀ.
const M: usize = 32;
const K: usize = 256;
const N: usize = 512;

fn bench_matmul_precisions(c: &mut Criterion) {
    let x = Matrix::rand_kaiming(M, K, 1);
    let w = Matrix::rand_normal(N, K, 0.05, 2);
    let w16 = F16Matrix::from_f32(&w);
    let w8 = QInt8Matrix::from_f32(&w);
    let w4 = QInt4Matrix::from_f32(&w);
    let mut g = c.benchmark_group("matmul_32x256x512");
    g.bench_function("fp32", |b| b.iter(|| matmul_nt(black_box(&x), black_box(&w))));
    g.bench_function("fp16_fused", |b| b.iter(|| w16.matmul_nt(black_box(&x))));
    g.bench_function("fp16_dequant", |b| b.iter(|| w16.matmul_nt_dequant(black_box(&x))));
    g.bench_function("int8_fused", |b| b.iter(|| w8.matmul_nt(black_box(&x))));
    g.bench_function("int8_dequant", |b| b.iter(|| w8.matmul_nt_dequant(black_box(&x))));
    g.bench_function("int4_fused", |b| b.iter(|| w4.matmul_nt(black_box(&x))));
    g.bench_function("int4_dequant", |b| b.iter(|| w4.matmul_nt_dequant(black_box(&x))));
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The substrate's parallel dispatch at a decode shape: same kernel,
    // thread count pinned per measurement (wall-clock scaling is only
    // visible on a multi-core host; results stay bit-identical anywhere).
    let x = Matrix::rand_kaiming(1, 512, 11);
    let w = Matrix::rand_normal(8192, 512, 0.05, 12);
    let mut g = c.benchmark_group("matmul_nt_1x512x8192_threads");
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("t{threads}"), |b| {
            b.iter(|| rayon::with_num_threads(threads, || matmul_nt(black_box(&x), black_box(&w))))
        });
    }
    g.finish();
}

fn bench_quantize_codecs(c: &mut Criterion) {
    let w = Matrix::rand_normal(N, K, 0.05, 3);
    let mut g = c.benchmark_group("quantize_512x256");
    for prec in [WeightPrecision::Fp16, WeightPrecision::Int8, WeightPrecision::Int4] {
        g.bench_function(prec.label(), |b| {
            b.iter(|| QuantizedWeights::quantize(black_box(&w), prec))
        });
    }
    g.finish();
}

fn bench_transformer_decode(c: &mut Criterion) {
    // Full decode steps at each precision on a real transformer — the
    // §3.3 mechanism end-to-end: smaller models feel dequant overhead.
    let base = TinyCausalLm::new(TinyConfig::small(7));
    let mut g = c.benchmark_group("transformer_decode_step");
    for prec in
        [WeightPrecision::Fp32, WeightPrecision::Fp16, WeightPrecision::Int8, WeightPrecision::Int4]
    {
        let model = base.to_precision(prec);
        g.bench_function(prec.label(), |b| {
            b.iter(|| {
                let mut cache = model.new_cache();
                for t in 0..16u32 {
                    black_box(model.forward_step(t, &mut cache));
                }
            })
        });
    }
    g.finish();
}

fn bench_bpe(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 5_000, 9);
    let tok = BpeTokenizer::train(&corpus.text, 512);
    let sample = SyntheticCorpus::generate(CorpusKind::WikiText2Like, 1_000, 10).text;
    let mut g = c.benchmark_group("bpe");
    g.bench_function("encode_1k_words", |b| b.iter(|| tok.encode(black_box(&sample))));
    let ids = tok.encode(&sample);
    g.bench_function("decode_1k_words", |b| b.iter(|| tok.decode(black_box(&ids))));
    g.finish();
}

fn bench_kv_allocator(c: &mut Criterion) {
    use edgellm_mem::KvBlockAllocator;
    c.bench_function("kv_alloc/register_append_release_32seq", |b| {
        b.iter(|| {
            // 32 seqs × 96 tokens need 192 two-MB blocks; give the pool 256.
            let mut a = KvBlockAllocator::new(1 << 29, 16, 131_072);
            for s in 0..32 {
                a.register(s);
                a.append(s, 96).unwrap();
            }
            for s in 0..32 {
                a.release(s).unwrap();
            }
            black_box(a.free_blocks())
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul_precisions, bench_thread_scaling, bench_quantize_codecs,
        bench_transformer_decode, bench_bpe, bench_kv_allocator
}
criterion_main!(kernels);
