//! # edgellm-bench — Criterion benchmark harness
//!
//! Three bench suites (run with `cargo bench`):
//!
//! * **`paper_tables`** — one target per paper table/figure. Each target
//!   first *regenerates* the artifact through its `edgellm-experiments`
//!   driver (printing the same rows/series the paper reports, side by side
//!   with the published values) and then Criterion-measures the
//!   representative simulation unit behind it.
//! * **`kernels`** — the executable substrate under the microscope:
//!   f32/f16/INT8/INT4 matrix products at transformer shapes, quantize/
//!   dequantize codecs, BPE encode, and full transformer decode steps per
//!   precision — demonstrating on a *real code path* why quantization
//!   slows small models (the paper's §3.3).
//! * **`ablations`** — the design-choice studies listed in DESIGN.md §5:
//!   outlier decomposition on/off, host-overhead term zeroed (pure
//!   roofline), GQA vs MHA KV footprint, paged vs contiguous KV, and the
//!   quadratic activation term on/off vs the paper's Phi-2 memory column.

/// Shared helpers for the bench targets.
pub mod support {
    use edgellm_core::{Engine, RunConfig};
    use edgellm_models::{Llm, Precision};

    /// The engine every bench target simulates against.
    pub fn engine() -> Engine {
        Engine::orin_agx_64gb()
    }

    /// The paper's default configuration for a model.
    pub fn default_cfg(llm: Llm) -> RunConfig {
        let prec = if llm == Llm::DeepseekQwen32b { Precision::Int8 } else { Precision::Fp16 };
        RunConfig::new(llm, prec)
    }
}
