//! `bench_kernels` — wall-clock kernel benchmarks emitted as
//! `BENCH_kernels.json`, so the repo's bench trajectory is tracked
//! PR-over-PR.
//!
//! Measures ns/op for the f32 / f16 / int8 / int4 NT products at the
//! paper's decode shapes (Phi-2: hidden 2560 → FFN 10240; Llama-3-8B:
//! hidden 4096 → FFN 14336) plus a chunked-prefill shape, each serial
//! (1 thread) vs parallel (4 threads), and fused vs dequantize-then-dot
//! for the quantized formats.
//!
//! This is a plain binary (not a criterion bench) so it can run from
//! `cargo run --release` in CI without dev-dependencies: timing is
//! best-of-N `Instant` sampling and the JSON is written by hand.
//!
//! Usage: `bench_kernels [--iters N] [--quick] [--out PATH] [--trace-out PATH]`
//!
//! `--trace-out <path>` (or `EDGELLM_TRACE=<path>`) also renders the
//! best-of measurements as a synthetic Perfetto timeline: one span per
//! kernel × shape on a `serial` and a `parallel` track, laid end to end.
//! The emitted JSON additionally reports `trace_feature` — whether
//! `edgellm-tensor` was compiled with its `trace` instrumentation,
//! detected at runtime from the kernel counters, so CI can assert the
//! default bench build carries zero instrumentation — and
//! `parallel_valid` (`host_cores > 1`): on a single-core runner the
//! parallel pass time-slices on one core, so speedup figures are noise
//! and consumers must not assert on them.

use edgellm_tensor::matmul::matmul_nt;
use edgellm_tensor::{F16Matrix, Matrix, QInt4Matrix, QInt8Matrix};
use edgellm_trace::{Arg, Trace};
use std::hint::black_box;
use std::time::Instant;

const SERIAL_THREADS: usize = 1;
const PARALLEL_THREADS: usize = 4;

struct Record {
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    kernel: String,
    serial_ns: u128,
    parallel_ns: u128,
}

/// Best-of-`iters` wall-clock nanoseconds for one invocation of `f`
/// (after one warm-up call).
fn time_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut best = u128::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

fn bench_shape(
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
    out: &mut Vec<Record>,
) {
    eprintln!("# shape {shape}: ({m} x {k}) . ({n} x {k})^T");
    let x = Matrix::rand_kaiming(m, k, 1);
    let w = Matrix::rand_normal(n, k, 0.05, 2);

    // One closure per kernel variant; boxed so they can live in one list.
    // Quantized weights are built per entry and dropped right after so the
    // peak footprint stays near one precision at a time.
    let mut run = |kernel: &str, f: &mut dyn FnMut()| {
        let serial_ns = rayon::with_num_threads(SERIAL_THREADS, || time_ns(iters, &mut *f));
        let parallel_ns = rayon::with_num_threads(PARALLEL_THREADS, || time_ns(iters, &mut *f));
        eprintln!("  {kernel:<16} serial {serial_ns:>12} ns  parallel {parallel_ns:>12} ns");
        out.push(Record { shape, m, k, n, kernel: kernel.to_string(), serial_ns, parallel_ns });
    };

    run("f32", &mut || {
        black_box(matmul_nt(black_box(&x), black_box(&w)));
    });
    {
        let w16 = F16Matrix::from_f32(&w);
        run("f16_fused", &mut || {
            black_box(w16.matmul_nt(black_box(&x)));
        });
        run("f16_dequant", &mut || {
            black_box(w16.matmul_nt_dequant(black_box(&x)));
        });
    }
    {
        let w8 = QInt8Matrix::from_f32(&w);
        run("int8_fused", &mut || {
            black_box(w8.matmul_nt(black_box(&x)));
        });
        run("int8_dequant", &mut || {
            black_box(w8.matmul_nt_dequant(black_box(&x)));
        });
    }
    {
        let w4 = QInt4Matrix::from_f32(&w);
        run("int4_fused", &mut || {
            black_box(w4.matmul_nt(black_box(&x)));
        });
        run("int4_dequant", &mut || {
            black_box(w4.matmul_nt_dequant(black_box(&x)));
        });
    }
}

/// Whether the tensor crate was built with its `trace` feature: the
/// kernel timers register `kernel.<variant>.*` counters on first use, so
/// after a benchmark pass their presence is the ground truth (a plain
/// `cfg!` here would only reflect *this* crate's features).
fn kernel_instrumentation_live() -> bool {
    edgellm_trace::registry().snapshot().counters.keys().any(|k| k.starts_with("kernel."))
}

/// Render the best-of measurements as a synthetic timeline: spans laid
/// end to end on one `serial` and one `parallel` track, in record order.
fn render_trace(records: &[Record]) -> Trace {
    let mut t = Trace::new();
    t.set_process_name(1, "bench_kernels");
    t.set_thread_name(1, 1, "serial");
    t.set_thread_name(1, 2, "parallel");
    let (mut cursor_serial, mut cursor_parallel) = (0.0f64, 0.0f64);
    for r in records {
        let args = vec![
            ("shape".to_string(), Arg::Str(r.shape.to_string())),
            ("m".to_string(), Arg::U64(r.m as u64)),
            ("k".to_string(), Arg::U64(r.k as u64)),
            ("n".to_string(), Arg::U64(r.n as u64)),
        ];
        let dur_s = r.serial_ns as f64 / 1_000.0;
        t.complete(1, 1, r.kernel.clone(), "bench", cursor_serial, dur_s, args.clone());
        cursor_serial += dur_s;
        let dur_p = r.parallel_ns as f64 / 1_000.0;
        t.complete(1, 2, r.kernel.clone(), "bench", cursor_parallel, dur_p, args);
        cursor_parallel += dur_p;
    }
    t
}

fn write_json(path: &str, records: &[Record]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_kernels/v1\",\n");
    s.push_str(&format!("  \"threads_serial\": {SERIAL_THREADS},\n"));
    s.push_str(&format!("  \"threads_parallel\": {PARALLEL_THREADS},\n"));
    s.push_str(&format!("  \"trace_feature\": {},\n", kernel_instrumentation_live()));
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    // On a single-core host the "parallel" pass is concurrency theater:
    // rayon still splits the work but every shard runs on the one core,
    // so speedup numbers are meaningless noise. Consumers (the CI bench
    // smoke, trend dashboards) must skip speedup assertions when false.
    s.push_str(&format!("  \"parallel_valid\": {},\n", host_cores > 1));
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = r.serial_ns as f64 / r.parallel_ns.max(1) as f64;
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"kernel\": \"{}\", \
             \"serial_ns_per_op\": {}, \"parallel_ns_per_op\": {}, \"parallel_speedup\": {:.3}}}{}\n",
            r.shape,
            r.m,
            r.k,
            r.n,
            r.kernel,
            r.serial_ns,
            r.parallel_ns,
            speedup,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let mut iters = 3usize;
    let mut quick = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut trace_out = std::env::var("EDGELLM_TRACE").ok();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs an integer argument");
            }
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path argument"),
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path argument"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_kernels [--iters N] [--quick] [--out PATH] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut records = Vec::new();
    if quick {
        // CI smoke shapes: exercise every kernel and both dispatch paths
        // in a few seconds.
        bench_shape("quick_decode", 1, 256, 2048, iters, &mut records);
        bench_shape("quick_prefill", 16, 256, 512, iters, &mut records);
    } else {
        // Paper decode shapes: single token against the FFN up-projection.
        bench_shape("phi2_decode", 1, 2560, 10240, iters, &mut records);
        bench_shape("llama8b_decode", 1, 4096, 14336, iters, &mut records);
        // Chunked-prefill shape (32-token chunk through the Phi-2 FFN).
        bench_shape("phi2_prefill32", 32, 2560, 10240, iters, &mut records);
    }

    write_json(&out_path, &records).expect("failed to write bench JSON");
    eprintln!("wrote {out_path} ({} records)", records.len());
    if let Some(path) = trace_out {
        let t = render_trace(&records);
        t.write_chrome_json(&path).expect("failed to write trace JSON");
        eprintln!("wrote {path} ({} spans)", t.len());
    }
}
