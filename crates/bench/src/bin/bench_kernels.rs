//! `bench_kernels` — wall-clock kernel benchmarks emitted as
//! `BENCH_kernels.json`, so the repo's bench trajectory is tracked
//! PR-over-PR.
//!
//! Measures ns/op for the f32 / f16 / int8 / int4 NT products at the
//! paper's decode shapes (Phi-2: hidden 2560 → FFN 10240; Llama-3-8B:
//! hidden 4096 → FFN 14336) plus a chunked-prefill shape, each serial
//! (1 thread) vs parallel (4 threads), and fused vs dequantize-then-dot
//! for the quantized formats.
//!
//! This is a plain binary (not a criterion bench) so it can run from
//! `cargo run --release` in CI without dev-dependencies: timing is
//! best-of-N `Instant` sampling and the JSON is written by hand.
//!
//! Usage: `bench_kernels [--iters N] [--quick] [--out PATH] [--trace-out PATH]
//!                       [--check-against PATH] [--tolerance F]`
//!
//! `--check-against <baseline.json>` compares this run's serial
//! fused-vs-dequant speedups (dequant ns / fused ns, per shape and
//! precision) against a committed baseline and exits non-zero when any
//! shared shape regresses by more than `--tolerance` (default 0.25,
//! i.e. 25%). The gate is skipped — with a message — when this run's
//! `parallel_valid` is false: a single-core host time-slices everything
//! and its timings are too noisy to gate on.
//!
//! `--trace-out <path>` (or `EDGELLM_TRACE=<path>`) also renders the
//! best-of measurements as a synthetic Perfetto timeline: one span per
//! kernel × shape on a `serial` and a `parallel` track, laid end to end.
//! The emitted JSON additionally reports `trace_feature` — whether
//! `edgellm-tensor` was compiled with its `trace` instrumentation,
//! detected at runtime from the kernel counters, so CI can assert the
//! default bench build carries zero instrumentation — and
//! `parallel_valid` (`host_cores > 1`): on a single-core runner the
//! parallel pass time-slices on one core, so speedup figures are noise
//! and consumers must not assert on them.

use edgellm_tensor::matmul::matmul_nt;
use edgellm_tensor::{F16Matrix, Matrix, QInt4Matrix, QInt8Matrix};
use edgellm_trace::{Arg, Trace};
use std::hint::black_box;
use std::time::Instant;

const SERIAL_THREADS: usize = 1;
const PARALLEL_THREADS: usize = 4;

struct Record {
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    kernel: String,
    serial_ns: u128,
    parallel_ns: u128,
}

/// Best-of-`iters` wall-clock nanoseconds for one invocation of `f`
/// (after one warm-up call).
fn time_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut best = u128::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

fn bench_shape(
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
    out: &mut Vec<Record>,
) {
    eprintln!("# shape {shape}: ({m} x {k}) . ({n} x {k})^T");
    let x = Matrix::rand_kaiming(m, k, 1);
    let w = Matrix::rand_normal(n, k, 0.05, 2);

    // One closure per kernel variant; boxed so they can live in one list.
    // Quantized weights are built per entry and dropped right after so the
    // peak footprint stays near one precision at a time.
    let mut run = |kernel: &str, f: &mut dyn FnMut()| {
        let serial_ns = rayon::with_num_threads(SERIAL_THREADS, || time_ns(iters, &mut *f));
        let parallel_ns = rayon::with_num_threads(PARALLEL_THREADS, || time_ns(iters, &mut *f));
        eprintln!("  {kernel:<16} serial {serial_ns:>12} ns  parallel {parallel_ns:>12} ns");
        out.push(Record { shape, m, k, n, kernel: kernel.to_string(), serial_ns, parallel_ns });
    };

    run("f32", &mut || {
        black_box(matmul_nt(black_box(&x), black_box(&w)));
    });
    {
        let w16 = F16Matrix::from_f32(&w);
        run("f16_fused", &mut || {
            black_box(w16.matmul_nt(black_box(&x)));
        });
        run("f16_dequant", &mut || {
            black_box(w16.matmul_nt_dequant(black_box(&x)));
        });
    }
    {
        let w8 = QInt8Matrix::from_f32(&w);
        run("int8_fused", &mut || {
            black_box(w8.matmul_nt(black_box(&x)));
        });
        run("int8_dequant", &mut || {
            black_box(w8.matmul_nt_dequant(black_box(&x)));
        });
    }
    {
        let w4 = QInt4Matrix::from_f32(&w);
        run("int4_fused", &mut || {
            black_box(w4.matmul_nt(black_box(&x)));
        });
        run("int4_dequant", &mut || {
            black_box(w4.matmul_nt_dequant(black_box(&x)));
        });
    }
}

/// Whether the tensor crate was built with its `trace` feature: the
/// kernel timers register `kernel.<variant>.*` counters on first use, so
/// after a benchmark pass their presence is the ground truth (a plain
/// `cfg!` here would only reflect *this* crate's features).
fn kernel_instrumentation_live() -> bool {
    edgellm_trace::registry().snapshot().counters.keys().any(|k| k.starts_with("kernel."))
}

/// Render the best-of measurements as a synthetic timeline: spans laid
/// end to end on one `serial` and one `parallel` track, in record order.
fn render_trace(records: &[Record]) -> Trace {
    let mut t = Trace::new();
    t.set_process_name(1, "bench_kernels");
    t.set_thread_name(1, 1, "serial");
    t.set_thread_name(1, 2, "parallel");
    let (mut cursor_serial, mut cursor_parallel) = (0.0f64, 0.0f64);
    for r in records {
        let args = vec![
            ("shape".to_string(), Arg::Str(r.shape.to_string())),
            ("m".to_string(), Arg::U64(r.m as u64)),
            ("k".to_string(), Arg::U64(r.k as u64)),
            ("n".to_string(), Arg::U64(r.n as u64)),
        ];
        let dur_s = r.serial_ns as f64 / 1_000.0;
        t.complete(1, 1, r.kernel.clone(), "bench", cursor_serial, dur_s, args.clone());
        cursor_serial += dur_s;
        let dur_p = r.parallel_ns as f64 / 1_000.0;
        t.complete(1, 2, r.kernel.clone(), "bench", cursor_parallel, dur_p, args);
        cursor_parallel += dur_p;
    }
    t
}

/// Serial fused-vs-dequant speedups (`dequant_ns / fused_ns`) keyed by
/// `shape/precision`, e.g. `phi2_decode/int4`. Sorted for stable output.
fn fused_speedups(entries: &[(String, String, u128)]) -> Vec<(String, f64)> {
    let serial = |shape: &str, kernel: &str| {
        entries.iter().find(|(s, k, _)| s == shape && k == kernel).map(|&(_, _, ns)| ns)
    };
    let mut out = Vec::new();
    for (shape, kernel, _) in entries {
        let Some(precision) = kernel.strip_suffix("_fused") else { continue };
        let (Some(fused), Some(dequant)) =
            (serial(shape, kernel), serial(shape, &format!("{precision}_dequant")))
        else {
            continue;
        };
        out.push((format!("{shape}/{precision}"), dequant as f64 / fused.max(1) as f64));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// A parsed `bench_kernels/v1` baseline.
struct Baseline {
    /// The baseline document's own `parallel_valid` flag. When false the
    /// baseline's parallel timings came from a single-core host and its
    /// parallel speedups must not be gated against — skipping them is
    /// announced, never silent.
    parallel_valid: bool,
    /// `(shape, kernel, serial_ns, parallel_ns)` per record.
    entries: Vec<(String, String, u128, u128)>,
}

/// Pull a `bench_kernels/v1` JSON back into records. The format is our
/// own line-per-record emission, so a field scanner is enough — no JSON
/// dependency.
fn parse_baseline(text: &str) -> Result<Baseline, String> {
    if !text.contains("\"schema\": \"bench_kernels/v1\"") {
        return Err("baseline is not a bench_kernels/v1 document".into());
    }
    let field = |line: &str, key: &str| -> Option<String> {
        let tail = &line[line.find(&format!("\"{key}\":"))? + key.len() + 3..];
        let tail = tail.trim_start();
        Some(if let Some(rest) = tail.strip_prefix('"') {
            rest[..rest.find('"')?].to_string()
        } else {
            tail[..tail.find([',', '}']).unwrap_or(tail.len())].trim().to_string()
        })
    };
    // A baseline predating the flag is treated as invalid-parallel: the
    // conservative reading (no parallel gate) rather than a guess.
    let parallel_valid = text
        .lines()
        .find(|l| l.contains("\"parallel_valid\":"))
        .and_then(|l| field(l, "parallel_valid"))
        .map(|v| v == "true")
        .unwrap_or(false);
    let mut entries = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"kernel\":")) {
        let (Some(shape), Some(kernel), Some(ns)) =
            (field(line, "shape"), field(line, "kernel"), field(line, "serial_ns_per_op"))
        else {
            return Err(format!("malformed record line: {line}"));
        };
        let ns = ns.parse::<u128>().map_err(|e| format!("serial_ns_per_op {ns:?}: {e}"))?;
        let pns =
            field(line, "parallel_ns_per_op").and_then(|v| v.parse::<u128>().ok()).unwrap_or(ns);
        entries.push((shape, kernel, ns, pns));
    }
    if entries.is_empty() {
        return Err("baseline carries no records".into());
    }
    Ok(Baseline { parallel_valid, entries })
}

/// Gate this run against a committed baseline. Two families of checks:
///
/// * **serial fused-vs-dequant speedups** per `shape/precision` — always
///   compared (best-of serial timings are stable even on small hosts);
/// * **parallel speedups** per `shape/kernel` — compared only when BOTH
///   the baseline and this run have `parallel_valid` timings. A
///   `parallel_valid: false` baseline skips this family with an explicit
///   message instead of silently passing.
///
/// Returns the number of regressions beyond `tolerance`.
fn check_against(
    baseline: &str,
    fresh: &[Record],
    tolerance: f64,
    fresh_parallel_valid: bool,
) -> Result<usize, String> {
    let base = parse_baseline(baseline)?;
    let base_serial: Vec<(String, String, u128)> =
        base.entries.iter().map(|(s, k, ns, _)| (s.clone(), k.clone(), *ns)).collect();
    let base_fused = fused_speedups(&base_serial);
    let now: Vec<(String, String, u128)> =
        fresh.iter().map(|r| (r.shape.to_string(), r.kernel.clone(), r.serial_ns)).collect();
    let now_fused = fused_speedups(&now);
    let mut shared = 0usize;
    let mut regressions = 0usize;
    for (key, base_speedup) in &base_fused {
        let Some((_, fresh_speedup)) = now_fused.iter().find(|(k, _)| k == key) else { continue };
        shared += 1;
        let floor = base_speedup * (1.0 - tolerance);
        let verdict = if *fresh_speedup < floor { "REGRESSED" } else { "ok" };
        eprintln!(
            "  {key:<24} fused-vs-dequant {fresh_speedup:.3}x (baseline {base_speedup:.3}x, \
             floor {floor:.3}x) {verdict}"
        );
        regressions += usize::from(*fresh_speedup < floor);
    }
    if shared == 0 {
        return Err("baseline and this run share no shape/precision pairs".into());
    }
    if !base.parallel_valid {
        eprintln!(
            "  parallel comparison skipped — baseline has parallel_valid: false (single-core \
             timings are noise, not a gate)"
        );
    } else if !fresh_parallel_valid {
        eprintln!(
            "  parallel comparison skipped — this host is single-core (parallel_valid false)"
        );
    } else {
        for (shape, kernel, serial_ns, parallel_ns) in &base.entries {
            let Some(r) = fresh.iter().find(|r| r.shape == shape && &r.kernel == kernel) else {
                continue;
            };
            let base_speedup = *serial_ns as f64 / (*parallel_ns).max(1) as f64;
            let fresh_speedup = r.serial_ns as f64 / r.parallel_ns.max(1) as f64;
            let floor = base_speedup * (1.0 - tolerance);
            let verdict = if fresh_speedup < floor { "REGRESSED" } else { "ok" };
            eprintln!(
                "  {shape}/{kernel:<14} parallel {fresh_speedup:.3}x (baseline \
                 {base_speedup:.3}x, floor {floor:.3}x) {verdict}"
            );
            regressions += usize::from(fresh_speedup < floor);
        }
    }
    Ok(regressions)
}

fn write_json(path: &str, records: &[Record]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_kernels/v1\",\n");
    s.push_str(&format!("  \"threads_serial\": {SERIAL_THREADS},\n"));
    s.push_str(&format!("  \"threads_parallel\": {PARALLEL_THREADS},\n"));
    s.push_str(&format!("  \"trace_feature\": {},\n", kernel_instrumentation_live()));
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    // On a single-core host the "parallel" pass is concurrency theater:
    // rayon still splits the work but every shard runs on the one core,
    // so speedup numbers are meaningless noise. Consumers (the CI bench
    // smoke, trend dashboards) must skip speedup assertions when false.
    s.push_str(&format!("  \"parallel_valid\": {},\n", host_cores > 1));
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = r.serial_ns as f64 / r.parallel_ns.max(1) as f64;
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"kernel\": \"{}\", \
             \"serial_ns_per_op\": {}, \"parallel_ns_per_op\": {}, \"parallel_speedup\": {:.3}}}{}\n",
            r.shape,
            r.m,
            r.k,
            r.n,
            r.kernel,
            r.serial_ns,
            r.parallel_ns,
            speedup,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let mut iters = 3usize;
    let mut quick = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut trace_out = std::env::var("EDGELLM_TRACE").ok();
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs an integer argument");
            }
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path argument"),
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path argument"));
            }
            "--check-against" => {
                baseline_path = Some(args.next().expect("--check-against needs a path argument"));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a fraction argument (e.g. 0.25)");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_kernels [--iters N] [--quick] [--out PATH] [--trace-out PATH] \
                     [--check-against PATH] [--tolerance F]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut records = Vec::new();
    if quick {
        // CI smoke shapes: exercise every kernel and both dispatch paths
        // in a few seconds.
        bench_shape("quick_decode", 1, 256, 2048, iters, &mut records);
        bench_shape("quick_prefill", 16, 256, 512, iters, &mut records);
    } else {
        // Paper decode shapes: single token against the FFN up-projection.
        bench_shape("phi2_decode", 1, 2560, 10240, iters, &mut records);
        bench_shape("llama8b_decode", 1, 4096, 14336, iters, &mut records);
        // Chunked-prefill shape (32-token chunk through the Phi-2 FFN).
        bench_shape("phi2_prefill32", 32, 2560, 10240, iters, &mut records);
        // Verify-batch shapes: speculative decoding scores 1+k draft rows
        // in one pass, so the decode GEMV becomes a skinny GEMM at
        // m = 2/4/8. These points feed `edgellm_perf::SpecCalib::fit`,
        // which least-squares t(m) = base + per_row·m to decide how far
        // drafting pays off on this silicon.
        bench_shape("phi2_verify2", 2, 2560, 10240, iters, &mut records);
        bench_shape("phi2_verify4", 4, 2560, 10240, iters, &mut records);
        bench_shape("phi2_verify8", 8, 2560, 10240, iters, &mut records);
        bench_shape("llama8b_verify2", 2, 4096, 14336, iters, &mut records);
        bench_shape("llama8b_verify4", 4, 4096, 14336, iters, &mut records);
        bench_shape("llama8b_verify8", 8, 4096, 14336, iters, &mut records);
    }

    write_json(&out_path, &records).expect("failed to write bench JSON");
    eprintln!("wrote {out_path} ({} records)", records.len());
    if let Some(path) = trace_out {
        let t = render_trace(&records);
        t.write_chrome_json(&path).expect("failed to write trace JSON");
        eprintln!("wrote {path} ({} spans)", t.len());
    }
    if let Some(path) = baseline_path {
        // A single-core host used to skip the whole gate; now only the
        // parallel family is skipped (announced inside check_against) and
        // the serial fused-vs-dequant speedups — which best-of timing
        // keeps stable even time-sliced — are still enforced.
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        eprintln!("# checking kernel speedups against {path} (tolerance {tolerance})");
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_against(&baseline, &records, tolerance, host_cores > 1) {
            Ok(0) => eprintln!("check-against: all shared shapes within tolerance"),
            Ok(n) => {
                eprintln!(
                    "check-against: {n} shape/precision pair(s) regressed beyond {tolerance}"
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("check-against: {e}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "schema": "bench_kernels/v1",
  "parallel_valid": true,
  "results": [
    {"shape": "phi2_decode", "m": 1, "k": 2560, "n": 10240, "kernel": "int4_fused", "serial_ns_per_op": 100, "parallel_ns_per_op": 50, "parallel_speedup": 2.000},
    {"shape": "phi2_decode", "m": 1, "k": 2560, "n": 10240, "kernel": "int4_dequant", "serial_ns_per_op": 300, "parallel_ns_per_op": 150, "parallel_speedup": 2.000}
  ]
}
"#;

    fn fresh(fused_ns: u128, dequant_ns: u128) -> Vec<Record> {
        let rec = |kernel: &str, serial_ns| Record {
            shape: "phi2_decode",
            m: 1,
            k: 2560,
            n: 10240,
            kernel: kernel.to_string(),
            serial_ns,
            parallel_ns: serial_ns,
        };
        vec![rec("int4_fused", fused_ns), rec("int4_dequant", dequant_ns)]
    }

    fn serial_view(b: &Baseline) -> Vec<(String, String, u128)> {
        b.entries.iter().map(|(s, k, ns, _)| (s.clone(), k.clone(), *ns)).collect()
    }

    #[test]
    fn baseline_parses_and_speedups_pair_fused_with_dequant() {
        let base = parse_baseline(BASELINE).expect("baseline parses");
        assert!(base.parallel_valid);
        assert_eq!(base.entries.len(), 2);
        let speedups = fused_speedups(&serial_view(&base));
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "phi2_decode/int4");
        assert!((speedups[0].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matching_speedup_passes_and_deep_regression_fails() {
        // Same 3.0x speedup: clean. 2.0x against a 3.0x baseline is a
        // 33% regression — beyond the 25% tolerance. fresh() records have
        // parallel_ns == serial_ns (1.0x parallel speedup vs the 2.0x
        // baseline), so run with fresh_parallel_valid=false to exercise
        // only the serial family here.
        assert_eq!(check_against(BASELINE, &fresh(100, 300), 0.25, false).unwrap(), 0);
        assert_eq!(check_against(BASELINE, &fresh(150, 300), 0.25, false).unwrap(), 1);
        // ...but within a looser 50% tolerance.
        assert_eq!(check_against(BASELINE, &fresh(150, 300), 0.5, false).unwrap(), 0);
    }

    #[test]
    fn parallel_gate_counts_regressions_only_when_both_sides_are_valid() {
        // fresh() has parallel_ns == serial_ns: a 1.0x parallel speedup
        // against the baseline's 2.0x — two records regressed when the
        // parallel family is armed.
        assert_eq!(check_against(BASELINE, &fresh(100, 300), 0.25, true).unwrap(), 2);
        // Single-core host: the parallel family is skipped, not failed.
        assert_eq!(check_against(BASELINE, &fresh(100, 300), 0.25, false).unwrap(), 0);
        // A parallel_valid:false baseline skips the family even on a
        // multi-core host — its timings were never a gate.
        let invalid = BASELINE.replace("\"parallel_valid\": true", "\"parallel_valid\": false");
        assert_eq!(check_against(&invalid, &fresh(100, 300), 0.25, true).unwrap(), 0);
        // A baseline predating the flag is treated the same way.
        let legacy: String = BASELINE
            .lines()
            .filter(|l| !l.contains("parallel_valid"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!parse_baseline(&legacy).unwrap().parallel_valid);
        assert_eq!(check_against(&legacy, &fresh(100, 300), 0.25, true).unwrap(), 0);
    }

    #[test]
    fn disjoint_shapes_are_an_error_not_a_silent_pass() {
        let mut other = fresh(100, 300);
        for r in &mut other {
            r.shape = "quick_decode";
        }
        assert!(check_against(BASELINE, &other, 0.25, true).is_err());
        assert!(parse_baseline("{}").is_err());
    }

    #[test]
    fn committed_baseline_stays_parseable() {
        // The repo-root baseline this binary gates against in CI.
        let text = include_str!("../../../../BENCH_kernels.json");
        let base = parse_baseline(text).expect("committed baseline parses");
        assert!(
            fused_speedups(&serial_view(&base)).len() >= 9,
            "decode + prefill + verify-batch shapes x three quantized precisions expected"
        );
        let verify_shapes = base.entries.iter().filter(|(s, ..)| s.contains("_verify")).count();
        assert!(
            verify_shapes >= 6,
            "verify-batch shapes (m=2/4/8 at both decode dims) must stay pinned for SpecCalib"
        );
    }
}
