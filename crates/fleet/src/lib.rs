//! # edgellm-fleet — heterogeneous multi-device fleet co-simulation
//!
//! The paper characterizes LLM inference on *single* Jetson-class edge
//! accelerators; a real deployment runs a mixed fleet of them behind a
//! request router. This crate co-simulates N per-device serving
//! simulations ([`edgellm_core::ServeSim`]) on a shared deterministic
//! event clock behind a pluggable front-end [`routing::RoutingPolicy`],
//! with scripted fault injection ([`fault::FaultPlan`]), thermal-throttle
//! coupling through the power crate's RC enclosure model, and optional
//! cloud-offload spillover via [`edgellm_core::CloudEndpoint`].
//!
//! Members can self-govern their power mode: attach an
//! [`edgellm_governor::GovernorPolicy`] with [`FleetDevice::governed`]
//! and the member retunes itself at iteration boundaries, the router's
//! energy/latency estimates follow every change, and the decisions land
//! in the router log ([`sim::RouterMark::GovernorStep`]) and the
//! [`sim::FleetAudit`] for the `edgellm-check` oracles.
//!
//! ```
//! use edgellm_core::{PoissonArrivals, RunConfig};
//! use edgellm_fleet::{FleetConfig, FleetDevice, JoinShortestQueue, run_fleet};
//! use edgellm_hw::DeviceSpec;
//! use edgellm_models::{Llm, Precision};
//!
//! let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
//! let fleet = vec![
//!     FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()),
//!     FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg),
//! ];
//! let reqs = PoissonArrivals::paper_shape(2.0).generate(16, 7);
//! let report = run_fleet(
//!     fleet,
//!     Box::new(JoinShortestQueue),
//!     FleetConfig::default(),
//!     &reqs,
//! )
//! .unwrap();
//! assert_eq!(report.completed, 16);
//! ```

pub mod device;
pub mod fault;
pub mod report;
pub mod routing;
pub mod sim;

pub use device::{FleetDevice, THERMAL_REARM_MARGIN_C};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use report::{DeviceReport, FleetReport};
pub use routing::{
    Decision, DeviceView, EnergyGreedy, JoinShortestQueue, LeastKvPressure, RoundRobin,
    RoutingPolicy, SloAware,
};
pub use sim::{run_fleet, FleetAudit, FleetConfig, FleetSim, RouterMark};
