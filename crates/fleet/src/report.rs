//! Fleet-wide and per-device serving reports.

use edgellm_core::serve::Completion;
use edgellm_trace::Histogram;

/// One device's share of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Member display name.
    pub name: String,
    /// Requests routed here (first routes + re-routes).
    pub routed: usize,
    /// Requests this device completed.
    pub completed: usize,
    /// Output tokens it delivered.
    pub output_tokens: u64,
    /// Device energy over the run (J).
    pub energy_j: f64,
    /// Device-local clock at its last event (s).
    pub busy_until_s: f64,
    /// Sequences preempted under KV pressure.
    pub preemptions: usize,
    /// Thermal trips suffered.
    pub thermal_trips: usize,
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Routing policy that produced this run.
    pub policy: String,
    /// Per-device breakdown, in fleet index order.
    pub devices: Vec<DeviceReport>,
    /// Requests submitted to the fleet.
    pub submitted: usize,
    /// Requests completed (devices + cloud).
    pub completed: usize,
    /// Requests served by the cloud endpoint.
    pub offloaded: usize,
    /// Requests that could never be placed (no device up, no cloud);
    /// zero in any healthy configuration.
    pub lost: usize,
    /// Requests cancelled mid-run by fault injection; conservation is
    /// `completed + lost + cancelled == submitted`.
    pub cancelled: usize,
    /// Fault- and thermal-driven re-routes of in-flight work.
    pub reroutes: usize,
    /// Thermal trips across the fleet.
    pub thermal_trips: usize,
    /// Sequences preempted under KV pressure, fleet-wide.
    pub preemptions: usize,
    /// Wall-clock end of the run: last device event or cloud completion.
    pub makespan_s: f64,
    /// Output tokens delivered fleet-wide.
    pub output_tokens: u64,
    /// Fleet throughput: output tokens over the makespan.
    pub output_tok_s: f64,
    /// Total energy: device integrals plus edge-side offload energy (J).
    pub energy_j: f64,
    /// Energy per delivered output token (J/token).
    pub energy_per_token_j: f64,
    /// Mean end-to-end latency (s).
    pub mean_latency_s: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_s: f64,
    /// Mean time to first token (s).
    pub mean_ttft_s: f64,
    /// Median TTFT (s).
    pub p50_ttft_s: f64,
    /// 99th-percentile TTFT (s).
    pub p99_ttft_s: f64,
    /// Fraction of completed requests within the SLO deadline.
    pub slo_attainment: f64,
}

impl FleetReport {
    /// Assemble the fleet-wide aggregates from the run's raw outcome.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        policy: String,
        devices: Vec<DeviceReport>,
        completions: &[Completion],
        submitted: usize,
        offloaded: usize,
        lost: usize,
        cancelled: usize,
        reroutes: usize,
        makespan_s: f64,
        cloud_energy_j: f64,
        slo_latency_s: f64,
    ) -> Self {
        let latencies = Histogram::from_samples(completions.iter().map(|c| c.latency_s));
        let ttfts = Histogram::from_samples(completions.iter().map(|c| c.ttft_s));
        let output_tokens: u64 = completions.iter().map(|c| c.output_tokens).sum();
        let energy_j: f64 = devices.iter().map(|d| d.energy_j).sum::<f64>() + cloud_energy_j;
        let within = completions.iter().filter(|c| c.latency_s <= slo_latency_s).count();
        let thermal_trips = devices.iter().map(|d| d.thermal_trips).sum();
        let preemptions = devices.iter().map(|d| d.preemptions).sum();
        FleetReport {
            policy,
            devices,
            submitted,
            completed: completions.len(),
            offloaded,
            lost,
            cancelled,
            reroutes,
            thermal_trips,
            preemptions,
            makespan_s,
            output_tokens,
            output_tok_s: if makespan_s > 0.0 { output_tokens as f64 / makespan_s } else { 0.0 },
            energy_j,
            energy_per_token_j: if output_tokens > 0 {
                energy_j / output_tokens as f64
            } else {
                0.0
            },
            mean_latency_s: latencies.mean(),
            p95_latency_s: latencies.quantile_or_zero(0.95),
            mean_ttft_s: ttfts.mean(),
            p50_ttft_s: ttfts.quantile_or_zero(0.50),
            p99_ttft_s: ttfts.quantile_or_zero(0.99),
            slo_attainment: if completions.is_empty() {
                0.0
            } else {
                within as f64 / completions.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(rid: u64, ttft: f64, lat: f64, toks: u64) -> Completion {
        Completion { rid, arrival_s: 0.0, ttft_s: ttft, latency_s: lat, output_tokens: toks }
    }

    #[test]
    fn aggregates_sum_and_quantiles_hold() {
        let devs = vec![
            DeviceReport {
                name: "a".into(),
                routed: 2,
                completed: 2,
                output_tokens: 100,
                energy_j: 50.0,
                busy_until_s: 10.0,
                preemptions: 1,
                thermal_trips: 0,
            },
            DeviceReport {
                name: "b".into(),
                routed: 1,
                completed: 1,
                output_tokens: 50,
                energy_j: 25.0,
                busy_until_s: 8.0,
                preemptions: 0,
                thermal_trips: 1,
            },
        ];
        let comps = vec![comp(0, 1.0, 5.0, 50), comp(1, 2.0, 15.0, 50), comp(2, 0.5, 25.0, 50)];
        let r = FleetReport::build("jsq".into(), devs, &comps, 3, 0, 0, 0, 0, 10.0, 0.0, 20.0);
        assert_eq!(r.completed, 3);
        assert_eq!(r.output_tokens, 150);
        assert!((r.energy_j - 75.0).abs() < 1e-12);
        assert!((r.energy_per_token_j - 0.5).abs() < 1e-12);
        assert!((r.output_tok_s - 15.0).abs() < 1e-12);
        assert!((r.slo_attainment - 2.0 / 3.0).abs() < 1e-12, "2 of 3 within 20 s");
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.thermal_trips, 1);
        assert!((r.mean_latency_s - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_completions_produce_zeroed_metrics() {
        let r = FleetReport::build("rr".into(), Vec::new(), &[], 0, 0, 0, 0, 0, 0.0, 0.0, 10.0);
        assert_eq!(r.completed, 0);
        assert_eq!(r.slo_attainment, 0.0);
        assert_eq!(r.energy_per_token_j, 0.0);
        assert_eq!(r.output_tok_s, 0.0);
    }
}
