//! The deterministic fleet co-simulator.
//!
//! [`FleetSim`] runs N per-device serve simulations
//! ([`ServeSim`](edgellm_core::ServeSim)) behind a front-end router on a
//! shared event clock. Each turn it fires the globally-earliest event —
//! a scripted fault, a thermal recovery, a request arrival, or one device
//! iteration — with a fixed tie order (fault < arrival < device step, then
//! lowest device index), so a given seed and configuration always produce
//! the same [`FleetReport`].
//!
//! Device iterations are atomic: a member may locally simulate past
//! another member's clock, but every *routing* decision happens at the
//! event instant using the current snapshots, and requests admitted on a
//! device start at its next iteration boundary at-or-after their arrival
//! — the same semantics the single-device scheduler has always had.

use std::collections::BTreeMap;

use edgellm_core::serve::{record_serve_run, Completion};
use edgellm_core::{CloudEndpoint, Request, RunError};
use edgellm_trace::forensics::{self, ForensicsLog};
use edgellm_trace::{Arg, Trace};

use crate::device::{DeviceSim, FleetDevice};
use crate::fault::{FaultKind, FaultPlan};
use crate::report::{DeviceReport, FleetReport};
use crate::routing::{Decision, DeviceView, RoutingPolicy};

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// End-to-end latency deadline used for SLO-attainment accounting.
    pub slo_latency_s: f64,
    /// Optional cloud endpoint for offload spillover.
    pub cloud: Option<CloudEndpoint>,
    /// Scripted device faults.
    pub faults: FaultPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { slo_latency_s: 30.0, cloud: None, faults: FaultPlan::none() }
    }
}

/// One router-level occurrence, timestamped on the shared fleet clock.
///
/// The simulator always keeps this log (a few plain enums per request —
/// negligible next to the per-iteration serve traces), so a finished run
/// can be rendered onto a timeline without re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterMark {
    /// Request `rid` was placed on device `device`.
    Routed {
        /// Request id.
        rid: u64,
        /// Fleet index of the target device.
        device: usize,
    },
    /// Request `rid` was served by the cloud endpoint.
    Offloaded {
        /// Request id.
        rid: u64,
    },
    /// Request `rid` had nowhere to go (fleet dark, no cloud) and was
    /// held for the next recovery.
    Held {
        /// Request id.
        rid: u64,
    },
    /// `count` in-flight requests were evacuated off a downed device.
    Evacuated {
        /// Fleet index of the downed device.
        device: usize,
        /// Requests drained and re-routed.
        count: usize,
    },
    /// A device left the eligible set.
    DeviceDown {
        /// Fleet index.
        device: usize,
        /// True for a thermal trip, false for a scripted outage.
        thermal: bool,
    },
    /// A device rejoined the eligible set.
    DeviceUp {
        /// Fleet index.
        device: usize,
    },
    /// A device's KV pool was shrunk mid-run.
    KvShrunk {
        /// Fleet index.
        device: usize,
        /// New pool size, in blocks.
        blocks: usize,
    },
    /// A device flipped to a different stock power mode.
    PowerFlipped {
        /// Fleet index.
        device: usize,
        /// Stock-registry index of the new mode.
        index: usize,
    },
    /// A device's own governor stepped it to a different ladder rung.
    GovernorStep {
        /// Fleet index.
        device: usize,
        /// Ladder rung stepped to (floor = 0).
        rung: usize,
    },
    /// Request `rid` was cancelled mid-run.
    Cancelled {
        /// Request id.
        rid: u64,
    },
    /// A device's quiescent clock jumped forward.
    ClockSkewed {
        /// Fleet index.
        device: usize,
        /// Jump size in milliseconds.
        ahead_ms: u32,
    },
}

/// Everything an invariant oracle needs from one fleet run: the
/// aggregate [`FleetReport`], each device's [`ServeAudit`](edgellm_core::serve::ServeAudit) snapshot (in
/// fleet index order), and the router's event log.
#[derive(Debug, Clone)]
pub struct FleetAudit {
    /// Aggregate run outcome.
    pub report: FleetReport,
    /// Per-device accounting snapshots, in fleet index order.
    pub devices: Vec<edgellm_core::serve::ServeAudit>,
    /// Per-device governance records, in fleet index order (`None` for
    /// ungoverned members).
    pub governors: Vec<Option<edgellm_governor::GovernorAudit>>,
    /// Router event log: `(fleet time, mark)`, in occurrence order.
    pub router_log: Vec<(f64, RouterMark)>,
}

enum Event {
    /// Scripted fault at `events()[idx]`.
    Fault(usize),
    /// Thermal cooldown of device `i` ends.
    Recovery(usize, f64),
    /// Next trace arrival is routed.
    Arrival,
    /// Device `i` performs one scheduler turn at its next event time.
    Step(usize, f64),
}

/// The heterogeneous multi-device co-simulator.
pub struct FleetSim {
    devices: Vec<DeviceSim>,
    policy: Box<dyn RoutingPolicy>,
    cfg: FleetConfig,
    arrivals: Vec<Request>,
    next_arrival: usize,
    next_fault: usize,
    /// Requests with nowhere to go (whole fleet dark, no cloud); flushed
    /// at the next recovery.
    held: Vec<Request>,
    reroutes: usize,
    offloaded: usize,
    /// Requests cancelled by fault injection (held-queue and on-device).
    cancelled: usize,
    cloud_completions: Vec<Completion>,
    cloud_energy_j: f64,
    cloud_done_s: f64,
    /// Router event log: `(fleet time, mark)`, in occurrence order.
    tlog: Vec<(f64, RouterMark)>,
    /// Fleet-scope forensic lifecycle events (routing, holds, outages,
    /// cloud offloads) merged with per-device logs by
    /// [`FleetSim::forensics`].
    fevents: Vec<forensics::Event>,
    /// Per-request cloud energy shares, in offload order.
    cloud_req_energy: Vec<(u64, f64)>,
    /// Per-device count of governor decisions already reconciled into
    /// the router log.
    gov_seen: Vec<usize>,
    /// Prompt token ids by request id, for members serving with a prefix
    /// cache: routing probes each device's radix cache against the
    /// prompt, and placement hands it to the device so admission can
    /// reuse (and later cache) the prefix. Requests without an entry
    /// route and serve exactly as before.
    prompts: std::collections::HashMap<u64, Vec<u32>>,
}

impl FleetSim {
    /// Build a fleet over `members` (≥1) serving `requests`.
    ///
    /// Every member's serve simulation is sized for the trace's longest
    /// request shape; a member whose model cannot load errors here.
    pub fn new(
        members: Vec<FleetDevice>,
        policy: Box<dyn RoutingPolicy>,
        cfg: FleetConfig,
        requests: &[Request],
    ) -> Result<Self, RunError> {
        if members.is_empty() {
            return Err(RunError::InvalidConfig("fleet needs at least one device".into()));
        }
        if requests.is_empty() {
            return Err(RunError::InvalidConfig("no requests".into()));
        }
        let max_sl =
            requests.iter().map(|r| r.input_tokens + r.output_tokens).max().expect("non-empty");
        let mut devices = members
            .into_iter()
            .map(|m| DeviceSim::new(m, max_sl))
            .collect::<Result<Vec<_>, _>>()?;
        for (i, d) in devices.iter_mut().enumerate() {
            d.sim.set_forensics_device(i as u32);
            d.sim.set_slo_latency(Some(cfg.slo_latency_s));
        }
        let mut arrivals = requests.to_vec();
        arrivals.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite").then(a.id.cmp(&b.id))
        });
        let gov_seen = vec![0; devices.len()];
        Ok(FleetSim {
            devices,
            policy,
            cfg,
            arrivals,
            next_arrival: 0,
            next_fault: 0,
            held: Vec::new(),
            reroutes: 0,
            offloaded: 0,
            cancelled: 0,
            cloud_completions: Vec::new(),
            cloud_energy_j: 0.0,
            cloud_done_s: 0.0,
            tlog: Vec::new(),
            fevents: Vec::new(),
            cloud_req_energy: Vec::new(),
            gov_seen,
            prompts: std::collections::HashMap::new(),
        })
    }

    /// Attach prompt token ids to requests (by request id). Members
    /// serving with a prefix cache ([`ServeConfig::with_prefix_cache`](edgellm_core::ServeConfig::with_prefix_cache))
    /// probe their radix caches against these at routing time — the
    /// [`PrefixAffinity`](crate::routing::PrefixAffinity) policy's
    /// signal — and reuse the cached prefix at admission. Ids without an
    /// entry behave exactly as before.
    pub fn with_prompts(mut self, prompts: impl IntoIterator<Item = (u64, Vec<u32>)>) -> Self {
        self.prompts.extend(prompts);
        self
    }

    /// Drive every event to completion and aggregate the report.
    ///
    /// When the process-wide [`edgellm_trace::sink`] is enabled, the
    /// whole fleet timeline — one process per device plus a router
    /// process — is appended to it first (see [`FleetSim::run_traced`]
    /// for the explicit variant).
    pub fn run(mut self) -> Result<FleetReport, RunError> {
        self.run_to_completion()?;
        self.record_forensics();
        if edgellm_trace::sink::enabled() {
            edgellm_trace::sink::with(|out| self.record_trace(out));
        }
        Ok(self.build_report())
    }

    /// [`FleetSim::run`], but also return the run's timeline explicitly:
    /// per-device serve tracks (iteration spans, KV and rail-power
    /// counters, preemption instants) plus a router track with
    /// routing/evacuation/outage instants, all on the shared fleet clock.
    pub fn run_traced(mut self) -> Result<(FleetReport, Trace), RunError> {
        self.run_to_completion()?;
        self.record_forensics();
        let mut out = Trace::new();
        self.record_trace(&mut out);
        Ok((self.build_report(), out))
    }

    /// [`FleetSim::run`], but keep everything an invariant oracle needs:
    /// the per-device accounting snapshots and the router event log, on
    /// top of the aggregate report. The `edgellm-check` harness drives
    /// every fleet scenario through this.
    pub fn run_audited(mut self) -> Result<FleetAudit, RunError> {
        self.run_to_completion()?;
        self.record_forensics();
        let devices = self.devices.iter().map(|d| d.sim.audit()).collect();
        let governors = self.devices.iter().map(|d| d.governor().map(|g| g.audit())).collect();
        let router_log = self.tlog.clone();
        Ok(FleetAudit { devices, governors, router_log, report: self.build_report() })
    }

    /// Fire events until the fleet is drained.
    fn run_to_completion(&mut self) -> Result<(), RunError> {
        while let Some(ev) = self.next_event() {
            self.apply(ev)?;
        }
        Ok(())
    }

    /// Render the finished run onto `out`: one process per device (via
    /// the serve adapter) and one for the router's event log.
    pub fn record_trace(&self, out: &mut Trace) {
        for d in &self.devices {
            let pid = out.next_pid();
            record_serve_run(
                out,
                pid,
                &d.cfg.name,
                d.sim.trace(),
                d.sim.rail_trace(),
                d.sim.cache_occupancy_log(),
                d.sim.preemption_events(),
            );
            if let Some(g) = d.governor() {
                let start_s = d.sim.trace().first().map(|it| it.t_s - it.dt_s).unwrap_or(0.0);
                edgellm_governor::trace::record_governor(
                    out,
                    pid,
                    &g.audit(),
                    start_s,
                    d.sim.now(),
                );
            }
        }
        let pid = out.next_pid();
        out.set_process_name(pid, format!("router · {}", self.policy.name()));
        out.set_thread_name(pid, 1, "events");
        let dev_name =
            |i: usize| self.devices.get(i).map_or("?", |d| d.cfg.name.as_str()).to_string();
        for &(t_s, mark) in &self.tlog {
            let (name, args) = match mark {
                RouterMark::Routed { rid, device } => (
                    "route",
                    vec![
                        ("rid".to_string(), Arg::U64(rid)),
                        ("device".to_string(), Arg::Str(dev_name(device))),
                    ],
                ),
                RouterMark::Offloaded { rid } => {
                    ("offload", vec![("rid".to_string(), Arg::U64(rid))])
                }
                RouterMark::Held { rid } => ("hold", vec![("rid".to_string(), Arg::U64(rid))]),
                RouterMark::Evacuated { device, count } => (
                    "evacuate",
                    vec![
                        ("device".to_string(), Arg::Str(dev_name(device))),
                        ("count".to_string(), Arg::U64(count as u64)),
                    ],
                ),
                RouterMark::DeviceDown { device, thermal } => (
                    if thermal { "thermal_trip" } else { "down" },
                    vec![("device".to_string(), Arg::Str(dev_name(device)))],
                ),
                RouterMark::DeviceUp { device } => {
                    ("up", vec![("device".to_string(), Arg::Str(dev_name(device)))])
                }
                RouterMark::KvShrunk { device, blocks } => (
                    "kv_shrink",
                    vec![
                        ("device".to_string(), Arg::Str(dev_name(device))),
                        ("blocks".to_string(), Arg::U64(blocks as u64)),
                    ],
                ),
                RouterMark::PowerFlipped { device, index } => (
                    "power_flip",
                    vec![
                        ("device".to_string(), Arg::Str(dev_name(device))),
                        ("mode".to_string(), Arg::U64(index as u64)),
                    ],
                ),
                RouterMark::GovernorStep { device, rung } => (
                    "governor_step",
                    vec![
                        ("device".to_string(), Arg::Str(dev_name(device))),
                        ("rung".to_string(), Arg::U64(rung as u64)),
                    ],
                ),
                RouterMark::Cancelled { rid } => {
                    ("cancel", vec![("rid".to_string(), Arg::U64(rid))])
                }
                RouterMark::ClockSkewed { device, ahead_ms } => (
                    "clock_skew",
                    vec![
                        ("device".to_string(), Arg::Str(dev_name(device))),
                        ("ahead_ms".to_string(), Arg::U64(ahead_ms as u64)),
                    ],
                ),
            };
            out.instant(pid, 1, name, "fleet", t_s * 1e6, args);
        }
    }

    /// Router event log so far: `(fleet time, mark)` in occurrence order.
    pub fn router_log(&self) -> &[(f64, RouterMark)] {
        &self.tlog
    }

    /// Record one fleet-scope lifecycle event, mirrored into the global
    /// flight recorder.
    fn femit(&mut self, t_s: f64, rid: u64, device: u32, kind: forensics::EventKind) {
        let ev = forensics::Event { t_s, rid, device, kind };
        self.fevents.push(ev);
        forensics::flight::record(ev);
    }

    /// The fleet's merged forensic record: router-scope events plus every
    /// member's device-scope log, time-sorted on the shared clock (stable
    /// for equal stamps, fleet events first, so a `Routed` always
    /// precedes its device's `Submitted`). The energy ledger folds every
    /// member's per-request shares and idle integral together with the
    /// cloud endpoint's per-offload shares; its total matches
    /// `FleetReport::energy_j`.
    pub fn forensics(&self) -> ForensicsLog {
        let mut events = self.fevents.clone();
        let mut req_energy: BTreeMap<u64, f64> = BTreeMap::new();
        let mut idle_energy_j = 0.0;
        let mut total_energy_j = self.cloud_energy_j;
        for d in &self.devices {
            let f = d.sim.forensics();
            events.extend(f.events);
            for (rid, e) in f.req_energy {
                *req_energy.entry(rid).or_insert(0.0) += e;
            }
            idle_energy_j += f.idle_energy_j;
            total_energy_j += f.total_energy_j;
        }
        for &(rid, e) in &self.cloud_req_energy {
            *req_energy.entry(rid).or_insert(0.0) += e;
        }
        events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).expect("finite event times"));
        ForensicsLog {
            label: format!("fleet · {}", self.policy.name()),
            events,
            req_energy: req_energy.into_iter().collect(),
            idle_energy_j,
            cloud_energy_j: self.cloud_energy_j,
            total_energy_j,
        }
    }

    /// Reconstruct and record the finished run's forensic document into
    /// the process-wide sink, when collection is enabled.
    fn record_forensics(&self) {
        if forensics::sink::enabled() {
            forensics::sink::record(forensics::reconstruct(&self.forensics()));
        }
    }

    /// Aggregate the finished run into a [`FleetReport`].
    fn build_report(self) -> FleetReport {
        let lost = self.held.len();
        let mut completions = Vec::new();
        let mut device_reports = Vec::with_capacity(self.devices.len());
        let mut makespan = self.cloud_done_s;
        for d in &self.devices {
            completions.extend_from_slice(d.sim.completions());
            makespan = makespan.max(d.sim.now());
            device_reports.push(DeviceReport {
                name: d.cfg.name.clone(),
                routed: d.routed,
                completed: d.sim.completions().len(),
                output_tokens: d.sim.served_output_tokens(),
                energy_j: d.sim.energy_j(),
                busy_until_s: d.sim.now(),
                preemptions: d.sim.preemptions(),
                thermal_trips: d.thermal_trips,
            });
        }
        completions.extend_from_slice(&self.cloud_completions);
        // Canonical order for reproducible aggregates: by request id.
        completions.sort_by_key(|c| c.rid);
        FleetReport::build(
            self.policy.name().to_string(),
            device_reports,
            &completions,
            self.arrivals.len(),
            self.offloaded,
            lost,
            self.cancelled,
            self.reroutes,
            makespan,
            self.cloud_energy_j,
            self.cfg.slo_latency_s,
        )
    }

    /// The globally-earliest pending event; `None` when the fleet is
    /// drained. Tie order: fault/recovery < arrival < device step, then
    /// lowest device index.
    fn next_event(&self) -> Option<Event> {
        let mut best: Option<(f64, u8, Event)> = None;
        let consider = |t: f64, prio: u8, ev: Event, best: &mut Option<(f64, u8, Event)>| {
            let better = match best {
                None => true,
                Some((bt, bp, _)) => t < *bt || (t == *bt && prio < *bp),
            };
            if better {
                *best = Some((t, prio, ev));
            }
        };
        if let Some(f) = self.cfg.faults.events().get(self.next_fault) {
            consider(f.t_s, 0, Event::Fault(self.next_fault), &mut best);
        }
        for (i, d) in self.devices.iter().enumerate() {
            if let Some(t) = d.down_until {
                consider(t, 0, Event::Recovery(i, t), &mut best);
            }
        }
        if let Some(r) = self.arrivals.get(self.next_arrival) {
            consider(r.arrival_s, 1, Event::Arrival, &mut best);
        }
        for (i, d) in self.devices.iter().enumerate() {
            if !d.up {
                continue;
            }
            if let Some(t) = d.sim.next_event_s() {
                consider(t, 2, Event::Step(i, t), &mut best);
            }
        }
        best.map(|(_, _, ev)| ev)
    }

    fn apply(&mut self, ev: Event) -> Result<(), RunError> {
        match ev {
            Event::Fault(idx) => {
                let f = self.cfg.faults.events()[idx];
                self.next_fault = idx + 1;
                match f.kind {
                    FaultKind::Down => self.take_down(f.device, f.t_s, None, false),
                    FaultKind::Up => self.bring_up(f.device, f.t_s, false),
                    FaultKind::KvShrink { permille } => self.kv_shrink(f.device, f.t_s, permille),
                    FaultKind::PowerFlip { index } => {
                        self.power_flip(f.device, f.t_s, index)?;
                    }
                    FaultKind::Cancel { rid } => self.cancel(rid, f.t_s),
                    FaultKind::ClockSkew { ahead_ms } => self.clock_skew(f.device, f.t_s, ahead_ms),
                }
            }
            Event::Recovery(i, t) => {
                self.devices[i].rearm_thermal();
                self.bring_up(i, t, true);
            }
            Event::Arrival => {
                let r = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                self.route(r, r.arrival_s);
            }
            Event::Step(i, t) => {
                let trip = self.devices[i].step(t)?;
                self.reconcile_governor(i);
                if let Some(recover_at) = trip {
                    let now = self.devices[i].sim.now();
                    self.take_down(i, now, recover_at, true);
                }
            }
        }
        Ok(())
    }

    /// Fold device `i`'s new governor decisions into the router log, so
    /// the fleet coordinator (and every oracle reading the log) sees
    /// self-governed mode changes on the shared clock exactly like
    /// scripted flips. The device already refreshed its routing
    /// estimates when it applied the change, so the very next routing
    /// decision scores it at the new operating point.
    fn reconcile_governor(&mut self, i: usize) {
        let new: Vec<(f64, usize)> = match self.devices[i].governor() {
            Some(g) => g.decisions()[self.gov_seen[i]..].iter().map(|c| (c.t_s, c.to)).collect(),
            None => return,
        };
        self.gov_seen[i] += new.len();
        for (t_s, rung) in new {
            self.tlog.push((t_s, RouterMark::GovernorStep { device: i, rung }));
        }
    }

    /// Drop a device: drain its unfinished requests and re-route them.
    /// `down_until` carries a thermal cooldown end (or `None` — a
    /// scripted outage, or a trip that never cools unaided — waiting for
    /// a scripted `Up`).
    fn take_down(&mut self, i: usize, now: f64, down_until: Option<f64>, thermal: bool) {
        if i >= self.devices.len() || !self.devices[i].up {
            return;
        }
        self.devices[i].up = false;
        self.devices[i].down_until = down_until;
        self.tlog.push((now, RouterMark::DeviceDown { device: i, thermal }));
        self.femit(now, forensics::NO_RID, i as u32, forensics::EventKind::DeviceDown { thermal });
        let drained = self.devices[i].sim.drain_incomplete();
        self.reroutes += drained.len();
        if !drained.is_empty() {
            self.tlog.push((now, RouterMark::Evacuated { device: i, count: drained.len() }));
        }
        for r in drained {
            self.route(r, now);
        }
    }

    /// Return a device to the eligible set and catch its local clock up
    /// to the fleet instant. A thermal cooldown (`powered`) idles across
    /// the gap and is billed at idle power; a scripted outage is off and
    /// bills nothing.
    fn bring_up(&mut self, i: usize, now: f64, powered: bool) {
        if i >= self.devices.len() || self.devices[i].up {
            return;
        }
        self.devices[i].up = true;
        self.devices[i].down_until = None;
        self.tlog.push((now, RouterMark::DeviceUp { device: i }));
        self.femit(now, forensics::NO_RID, i as u32, forensics::EventKind::DeviceUp);
        if powered {
            self.devices[i].sim.idle_to(now);
        } else {
            self.devices[i].sim.skip_to(now);
        }
        let held = std::mem::take(&mut self.held);
        for r in held {
            self.route(r, now);
        }
    }

    /// Shrink a device's KV pool to `permille`/1000 of its current size
    /// (floored at one block); sequences that no longer fit are preempted
    /// on-device with the recompute penalty (not re-routed — the device
    /// itself is still healthy).
    fn kv_shrink(&mut self, i: usize, now: f64, permille: u16) {
        if i >= self.devices.len() {
            return;
        }
        let total = self.devices[i].sim.kv_total_blocks();
        let target = ((total as u64 * permille as u64) / 1000).max(1) as usize;
        if target >= total {
            return;
        }
        self.devices[i].sim.shrink_kv_pool(target);
        self.tlog.push((now, RouterMark::KvShrunk { device: i, blocks: target }));
    }

    /// Flip a device to stock power mode `index` (modulo the registry).
    /// An up device is idled to the fleet instant first so the pre-flip
    /// stretch is billed at the old mode's idle power (exact energy
    /// splitting); a down device is off and bills nothing. Routing
    /// estimates follow the new mode either way.
    fn power_flip(&mut self, i: usize, now: f64, index: u8) -> Result<(), RunError> {
        if i >= self.devices.len() {
            return Ok(());
        }
        let registry = edgellm_hw::PowerModeRegistry::stock_for(self.devices[i].cfg.device.clone());
        let idx = index as usize % registry.len().max(1);
        let mode = registry.iter().nth(idx).expect("index reduced modulo len").clone();
        if self.devices[i].up {
            self.devices[i].sim.set_power_mode_at(&mode, now)?;
        } else {
            self.devices[i].sim.set_power_mode(&mode)?;
        }
        self.devices[i].refresh_estimates();
        self.devices[i].resync_governor();
        self.tlog.push((now, RouterMark::PowerFlipped { device: i, index: idx }));
        Ok(())
    }

    /// Cancel request `rid` wherever it stands: the router's hold queue,
    /// or any device's queue/batch. Completed (or unknown) rids no-op.
    fn cancel(&mut self, rid: u64, now: f64) {
        if let Some(pos) = self.held.iter().position(|r| r.id == rid) {
            self.held.remove(pos);
            self.cancelled += 1;
            self.tlog.push((now, RouterMark::Cancelled { rid }));
            self.femit(now, rid, forensics::NO_DEVICE, forensics::EventKind::Cancelled);
            return;
        }
        for d in &mut self.devices {
            if d.sim.cancel(rid) {
                self.cancelled += 1;
                self.tlog.push((now, RouterMark::Cancelled { rid }));
                return;
            }
        }
    }

    /// Jump a quiescent device's clock ahead of the fleet instant — an
    /// NTP step. Devices with live sequences ignore it.
    fn clock_skew(&mut self, i: usize, now: f64, ahead_ms: u32) {
        if i >= self.devices.len() {
            return;
        }
        let before = self.devices[i].sim.now();
        self.devices[i].sim.skip_to(now.max(before) + ahead_ms as f64 / 1000.0);
        if self.devices[i].sim.now() > before {
            self.tlog.push((now, RouterMark::ClockSkewed { device: i, ahead_ms }));
        }
    }

    fn route(&mut self, r: Request, now: f64) {
        let prompt = self.prompts.get(&r.id).map(|p| p.as_slice());
        let views: Vec<DeviceView> =
            self.devices.iter().enumerate().map(|(i, d)| d.view(i, prompt)).collect();
        if !views.iter().any(|v| v.up) {
            if self.cfg.cloud.is_some() {
                self.cloud_complete(r, now);
            } else {
                self.tlog.push((now, RouterMark::Held { rid: r.id }));
                self.femit(now, r.id, forensics::NO_DEVICE, forensics::EventKind::Held);
                self.held.push(r);
            }
            return;
        }
        match self.policy.route(&r, &views) {
            Decision::Device(i) if i < self.devices.len() && self.devices[i].up => {
                self.place(i, &r, now);
            }
            Decision::Cloud if self.cfg.cloud.is_some() => self.cloud_complete(r, now),
            // A policy picked a down/invalid target, or cloud without an
            // endpoint: fall back to the least-loaded up device.
            _ => {
                let i = views
                    .iter()
                    .filter(|v| v.up)
                    .min_by(|a, b| {
                        a.backlog_tokens.cmp(&b.backlog_tokens).then(a.index.cmp(&b.index))
                    })
                    .expect("checked above")
                    .index;
                self.place(i, &r, now);
            }
        }
    }

    /// Hand a request to device `i` at the fleet instant `now`. The
    /// receiving clock is idled up to `now` first so a re-routed request
    /// (whose `arrival_s` predates the evacuation) cannot start — and
    /// bill — in the device's past. Busy devices already sit at or ahead
    /// of `now` (events fire in global time order), so this only moves
    /// lagging idle clocks and the gap is billed at idle power exactly as
    /// the lazy step-idle path would.
    fn place(&mut self, i: usize, r: &Request, now: f64) {
        self.tlog.push((now, RouterMark::Routed { rid: r.id, device: i }));
        self.femit(now, r.id, i as u32, forensics::EventKind::Routed);
        self.devices[i].sim.idle_to(now);
        match self.prompts.get(&r.id) {
            Some(p) => self.devices[i].submit_with_prompt(r, p),
            None => self.devices[i].submit(r),
        }
    }

    fn cloud_complete(&mut self, r: Request, now: f64) {
        let ep = self.cfg.cloud.expect("caller checked");
        let wait = (now - r.arrival_s).max(0.0);
        let latency_s = wait + ep.request_latency_s(r.input_tokens, r.output_tokens);
        let ttft_s = latency_s - r.output_tokens as f64 / ep.tok_rate;
        self.cloud_completions.push(Completion {
            rid: r.id,
            arrival_s: r.arrival_s,
            ttft_s,
            latency_s,
            output_tokens: r.output_tokens,
        });
        let cloud_j = ep.edge_energy_j(r.input_tokens, r.output_tokens);
        self.cloud_energy_j += cloud_j;
        self.cloud_req_energy.push((r.id, cloud_j));
        self.cloud_done_s = self.cloud_done_s.max(r.arrival_s + latency_s);
        self.offloaded += 1;
        self.tlog.push((now, RouterMark::Offloaded { rid: r.id }));
        self.femit(now, r.id, forensics::NO_DEVICE, forensics::EventKind::Offloaded);
        self.femit(
            r.arrival_s + ttft_s,
            r.id,
            forensics::NO_DEVICE,
            forensics::EventKind::FirstToken,
        );
        self.femit(
            r.arrival_s + latency_s,
            r.id,
            forensics::NO_DEVICE,
            forensics::EventKind::Completed { output_tokens: r.output_tokens },
        );
    }
}

/// Build and run a fleet in one call.
pub fn run_fleet(
    members: Vec<FleetDevice>,
    policy: Box<dyn RoutingPolicy>,
    cfg: FleetConfig,
    requests: &[Request],
) -> Result<FleetReport, RunError> {
    FleetSim::new(members, policy, cfg, requests)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{EnergyGreedy, JoinShortestQueue, RoundRobin, SloAware};
    use edgellm_core::{PoissonArrivals, RunConfig};
    use edgellm_hw::{DeviceSpec, PowerMode};
    use edgellm_models::{Llm, Precision};
    use edgellm_power::ThermalModel;

    fn agx_pair() -> Vec<FleetDevice> {
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        vec![
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()).named("agx-0"),
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg).named("agx-1"),
        ]
    }

    fn mixed_trio() -> Vec<FleetDevice> {
        let nx = DeviceSpec::orin_nx_16gb();
        let xav = DeviceSpec::xavier_agx_32gb();
        vec![
            FleetDevice::new(
                DeviceSpec::orin_agx_64gb(),
                RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
            ),
            FleetDevice::new(
                nx.clone(),
                RunConfig::new(Llm::Llama31_8b, Precision::Int4)
                    .power_mode(PowerMode::maxn_for(&nx)),
            ),
            FleetDevice::new(
                xav.clone(),
                RunConfig::new(Llm::Llama31_8b, Precision::Int4)
                    .power_mode(PowerMode::maxn_for(&xav)),
            ),
        ]
    }

    #[test]
    fn round_robin_conserves_and_balances() {
        let reqs = PoissonArrivals::paper_shape(2.0).generate(40, 7);
        let r =
            run_fleet(agx_pair(), Box::new(RoundRobin::default()), FleetConfig::default(), &reqs)
                .unwrap();
        assert_eq!(r.completed, 40);
        assert_eq!(r.lost, 0);
        assert_eq!(
            r.output_tokens,
            reqs.iter().map(|q| q.output_tokens).sum::<u64>(),
            "every output token accounted"
        );
        let (a, b) = (r.devices[0].routed, r.devices[1].routed);
        assert_eq!(a + b, 40);
        assert_eq!(a, 20, "alternating placement on identical twins");
    }

    #[test]
    fn same_seed_same_report() {
        let reqs = PoissonArrivals::paper_shape(2.5).generate(30, 11);
        let run = || {
            run_fleet(mixed_trio(), Box::new(JoinShortestQueue), FleetConfig::default(), &reqs)
                .unwrap()
        };
        assert_eq!(run(), run(), "fleet runs are deterministic");
    }

    #[test]
    fn dropout_reroutes_without_losing_requests() {
        let reqs = PoissonArrivals::paper_shape(2.0).generate(40, 3);
        let faults = FaultPlan::none().outage(0, 4.0, 1e9);
        let cfg = FleetConfig { faults, ..FleetConfig::default() };
        let r = run_fleet(agx_pair(), Box::new(JoinShortestQueue), cfg, &reqs).unwrap();
        assert_eq!(r.completed + r.lost, 40);
        assert_eq!(r.lost, 0, "survivor absorbs everything");
        assert!(r.reroutes > 0, "in-flight work was evacuated");
        assert_eq!(r.output_tokens, reqs.iter().map(|q| q.output_tokens).sum::<u64>());
        assert!(r.devices[1].completed > r.devices[0].completed);
    }

    #[test]
    fn whole_fleet_outage_holds_and_recovers() {
        let reqs = PoissonArrivals::paper_shape(2.0).generate(20, 5);
        // Both devices dark from t=1 until t=60: arrivals in the window
        // are held, then flushed at recovery. Nothing is lost.
        let faults = FaultPlan::none().outage(0, 1.0, 60.0).outage(1, 1.0, 60.0);
        let cfg = FleetConfig { faults, ..FleetConfig::default() };
        let r = run_fleet(agx_pair(), Box::new(RoundRobin::default()), cfg, &reqs).unwrap();
        assert_eq!(r.completed, 20);
        assert_eq!(r.lost, 0);
        assert!(r.mean_latency_s > 30.0, "the outage shows up in latency, not in loss");
    }

    #[test]
    fn slo_aware_spills_to_cloud_under_overload() {
        // One modest device, a hard deadline, and a hot arrival burst:
        // the policy must shed the tail to the cloud endpoint.
        let members = || {
            let xav = DeviceSpec::xavier_agx_32gb();
            vec![FleetDevice::new(
                xav.clone(),
                RunConfig::new(Llm::Llama31_8b, Precision::Int4)
                    .power_mode(PowerMode::maxn_for(&xav)),
            )]
        };
        let reqs = PoissonArrivals::paper_shape(4.0).generate(40, 13);
        let cfg = FleetConfig {
            slo_latency_s: 20.0,
            cloud: Some(CloudEndpoint::datacenter()),
            faults: FaultPlan::none(),
        };
        let r = run_fleet(members(), Box::new(SloAware::new(20.0)), cfg, &reqs).unwrap();
        assert_eq!(r.completed, 40);
        assert!(r.offloaded > 0, "deadline pressure must offload");
        assert!(r.offloaded < 40, "the device still serves its share");
        assert!(r.slo_attainment >= 0.9, "spillover protects the SLO: {}", r.slo_attainment);
        // The same overload with nowhere to spill blows the deadline for
        // much more of the trace.
        let stuck = FleetConfig { slo_latency_s: 20.0, ..FleetConfig::default() };
        let r0 = run_fleet(members(), Box::new(SloAware::new(20.0)), stuck, &reqs).unwrap();
        assert!(
            r.slo_attainment > r0.slo_attainment + 0.2,
            "cloud {} vs fleet-only {}",
            r.slo_attainment,
            r0.slo_attainment
        );
    }

    #[test]
    fn thermal_trip_forces_cooldown_and_rerouting() {
        // An aggressive enclosure (tiny τ, high resistance, low limit)
        // trips the first device within seconds of load; its work moves
        // to the second device and everything still completes.
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = vec![
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()).named("sealed").thermal(
                ThermalModel { r_c_per_w: 2.0, tau_s: 5.0, t_ambient_c: 25.0, t_limit_c: 60.0 },
            ),
            FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg).named("cooled"),
        ];
        let reqs = PoissonArrivals::paper_shape(2.0).generate(30, 9);
        let r =
            run_fleet(members, Box::new(JoinShortestQueue), FleetConfig::default(), &reqs).unwrap();
        assert!(r.thermal_trips > 0, "sealed enclosure must trip");
        assert_eq!(r.completed, 30);
        assert_eq!(r.lost, 0);
        assert!(r.devices[1].completed > 0, "the cooled twin picks up the slack");
    }

    #[test]
    fn energy_greedy_consolidates_on_the_efficient_device() {
        let reqs = PoissonArrivals::paper_shape(1.0).generate(30, 17);
        let greedy = run_fleet(
            mixed_trio(),
            Box::new(EnergyGreedy::default()),
            FleetConfig::default(),
            &reqs,
        )
        .unwrap();
        let rr =
            run_fleet(mixed_trio(), Box::new(RoundRobin::default()), FleetConfig::default(), &reqs)
                .unwrap();
        assert_eq!(greedy.completed, 30);
        assert!(
            greedy.energy_per_token_j < rr.energy_per_token_j,
            "greedy {:.3} J/tok vs rr {:.3} J/tok",
            greedy.energy_per_token_j,
            rr.energy_per_token_j
        );
    }

    #[test]
    fn traced_run_emits_device_tracks_and_router_instants() {
        let reqs = PoissonArrivals::paper_shape(2.0).generate(12, 7);
        let faults = FaultPlan::none().outage(0, 3.0, 1e9);
        let cfg = FleetConfig { faults, ..FleetConfig::default() };
        let sim =
            FleetSim::new(agx_pair(), Box::new(JoinShortestQueue), cfg.clone(), &reqs).unwrap();
        let (report, trace) = sim.run_traced().unwrap();
        // The traced variant must not perturb the simulation itself.
        let plain = run_fleet(agx_pair(), Box::new(JoinShortestQueue), cfg, &reqs).unwrap();
        assert_eq!(report, plain);
        let json = trace.to_chrome_json();
        edgellm_trace::validate_chrome_trace(&json).expect("schema-valid fleet trace");
        assert!(json.contains("\"agx-0\"") && json.contains("\"agx-1\""), "device processes");
        assert!(json.contains("router · join-shortest-queue"), "router process");
        assert!(json.contains("\"route\""), "routing instants");
        assert!(json.contains("\"down\"") && json.contains("\"up\""), "outage instants");
        assert!(json.contains("\"evacuate\""), "drained work marked");
        assert!(json.contains("power_rails_w"), "per-device rail counters");
    }

    #[test]
    fn mid_run_knobs_conserve_requests() {
        // Every knob class fires mid-run: conservation must hold with
        // cancellation folded in, and the run must stay deterministic.
        let reqs = PoissonArrivals::paper_shape(2.0).generate(30, 19);
        let faults = FaultPlan::none()
            .kv_shrink(0, 3.0, 250)
            .power_flip(1, 4.0, 1)
            .cancel(reqs[5].arrival_s + 0.05, reqs[5].id)
            .cancel(reqs[20].arrival_s + 0.05, reqs[20].id)
            .clock_skew(1, 0.5, 400);
        let cfg = FleetConfig { faults, ..FleetConfig::default() };
        let run = || {
            FleetSim::new(agx_pair(), Box::new(JoinShortestQueue), cfg.clone(), &reqs)
                .unwrap()
                .run_audited()
                .unwrap()
        };
        let audit = run();
        let r = &audit.report;
        assert_eq!(r.cancelled, 2);
        assert_eq!(r.completed + r.lost + r.cancelled, 30, "knobs never lose a request");
        assert!(
            audit.router_log.iter().any(|(_, m)| matches!(m, RouterMark::KvShrunk { .. })),
            "shrink marked"
        );
        assert!(
            audit.router_log.iter().any(|(_, m)| matches!(m, RouterMark::PowerFlipped { .. })),
            "flip marked"
        );
        for d in &audit.devices {
            assert_eq!(d.kv_blocks_allocated, d.kv_blocks_freed, "{}: KV drains", d.label);
            assert_eq!(d.kv_blocks_in_use, 0);
        }
        let total_cancel: usize = audit.devices.iter().map(|d| d.cancelled.len()).sum();
        assert_eq!(total_cancel, 2, "both cancels landed on devices");
        assert_eq!(run().report, audit.report, "knobbed runs stay deterministic");
    }

    #[test]
    fn governed_member_logs_decisions_and_stays_deterministic() {
        use edgellm_governor::{HystereticLadder, SloSpec};
        let cfg = RunConfig::new(Llm::Llama31_8b, Precision::Fp16);
        let members = || {
            vec![
                FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone())
                    .named("governed")
                    .governed(Box::new(HystereticLadder::new(SloSpec {
                        ttft_s: 20.0,
                        tbt_s: 1.0,
                    }))),
                FleetDevice::new(DeviceSpec::orin_agx_64gb(), cfg.clone()).named("static"),
            ]
        };
        let reqs = PoissonArrivals::paper_shape(0.5).generate(24, 7);
        let run = || {
            FleetSim::new(members(), Box::new(JoinShortestQueue), FleetConfig::default(), &reqs)
                .unwrap()
                .run_audited()
                .unwrap()
        };
        let audit = run();
        assert_eq!(audit.report.completed, 24);
        assert_eq!(audit.report.lost, 0);
        assert!(audit.governors[0].is_some() && audit.governors[1].is_none());
        let ga = audit.governors[0].as_ref().unwrap();
        assert!(!ga.decisions.is_empty(), "sparse load must trigger down-steps");
        edgellm_governor::verify_min_dwell(ga).expect("fleet-driven governor respects dwell");
        let logged = audit
            .router_log
            .iter()
            .filter(|(_, m)| matches!(m, RouterMark::GovernorStep { device: 0, .. }))
            .count();
        assert_eq!(logged, ga.decisions.len(), "every decision reconciled into the router log");
        assert_eq!(run().report, audit.report, "governed runs stay deterministic");
        // The rendered timeline carries the governor track alongside the
        // router's governor_step instants.
        let (_, trace) =
            FleetSim::new(members(), Box::new(JoinShortestQueue), FleetConfig::default(), &reqs)
                .unwrap()
                .run_traced()
                .unwrap();
        let json = trace.to_chrome_json();
        edgellm_trace::validate_chrome_trace(&json).expect("schema-valid governed fleet trace");
        assert!(json.contains("governor_step"), "router marks rendered");
        assert!(json.contains("active_power_mode"), "per-device mode counter track");
    }

    #[test]
    fn prefix_affinity_consolidates_shared_prompts_on_one_cache() {
        use crate::routing::PrefixAffinity;
        use edgellm_core::serve::ServeConfig;
        // Identical twins, both serving with a prefix cache, fed requests
        // that all share one 128-token system prompt arriving far enough
        // apart to admit one at a time.
        let members = || {
            agx_pair()
                .into_iter()
                .map(|m| m.serve(ServeConfig::chunked(16).with_prefix_cache()))
                .collect::<Vec<_>>()
        };
        let system: Vec<u32> = (0..128).map(|i| 900_000 + i).collect();
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request {
                id: i,
                arrival_s: i as f64 * 40.0,
                input_tokens: 128,
                output_tokens: 16,
            })
            .collect();
        let prompts = || reqs.iter().map(|r| (r.id, system.clone()));
        let run = |policy: Box<dyn RoutingPolicy>| {
            FleetSim::new(members(), policy, FleetConfig::default(), &reqs)
                .unwrap()
                .with_prompts(prompts())
                .run_audited()
                .unwrap()
        };
        let affine = run(Box::new(PrefixAffinity));
        assert_eq!(affine.report.completed, 6);
        // The first request lands cold (fallback scoring); every later
        // one chases its warm cache, so one device serves everything and
        // its counters show real reuse.
        let warm: Vec<_> = affine.devices.iter().filter(|d| d.kv_cache_hit_tokens > 0).collect();
        assert_eq!(warm.len(), 1, "all shared-prompt traffic consolidates on one cache");
        assert!(warm[0].kv_cache_hit_tokens >= 128 * 5, "five warm admissions reuse the prompt");
        let routed: Vec<usize> = affine.report.devices.iter().map(|d| d.routed).collect();
        assert!(routed.contains(&6), "one member took all six requests: {routed:?}");
        // Round-robin splits the same trace across both caches and reuses
        // strictly less.
        let rr = run(Box::<RoundRobin>::default());
        let rr_hits: u64 = rr.devices.iter().map(|d| d.kv_cache_hit_tokens).sum();
        let affine_hits: u64 = affine.devices.iter().map(|d| d.kv_cache_hit_tokens).sum();
        assert!(
            affine_hits > rr_hits,
            "affinity {affine_hits} hit tokens vs round-robin {rr_hits}"
        );
        // Determinism holds with prompts attached.
        assert_eq!(run(Box::new(PrefixAffinity)).report, affine.report);
    }

    #[test]
    fn empty_fleet_and_empty_trace_error() {
        let reqs = PoissonArrivals::paper_shape(1.0).generate(4, 1);
        assert!(FleetSim::new(
            Vec::new(),
            Box::new(RoundRobin::default()),
            FleetConfig::default(),
            &reqs
        )
        .is_err());
        assert!(FleetSim::new(
            agx_pair(),
            Box::new(RoundRobin::default()),
            FleetConfig::default(),
            &[]
        )
        .is_err());
    }
}
