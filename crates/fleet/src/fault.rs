//! Scripted device-fault injection.
//!
//! A [`FaultPlan`] is a deterministic schedule of dropout/recovery events
//! the fleet co-simulator applies at exact instants: on a
//! [`FaultKind::Down`] the device's queued and in-flight requests are
//! drained and re-routed (nothing is lost); on a [`FaultKind::Up`] the
//! device rejoins the eligible set and any requests held while the whole
//! fleet was dark are re-submitted.

/// What happens to the device at the event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device drops out; its unfinished work is re-routed.
    Down,
    /// The device recovers and rejoins the routing set.
    Up,
}

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires (s, fleet clock).
    pub t_s: f64,
    /// Index of the device it applies to.
    pub device: usize,
    /// Dropout or recovery.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule a dropout at `t_s`.
    pub fn down(mut self, device: usize, t_s: f64) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::Down });
        self.sort();
        self
    }

    /// Schedule a recovery at `t_s`.
    pub fn up(mut self, device: usize, t_s: f64) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::Up });
        self.sort();
        self
    }

    /// A dropout at `down_s` followed by recovery at `up_s`.
    pub fn outage(self, device: usize, down_s: f64, up_s: f64) -> Self {
        assert!(up_s >= down_s, "recovery precedes dropout");
        self.down(device, down_s).up(device, up_s)
    }

    /// The scheduled events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn sort(&mut self) {
        // Stable by (time, device); Down sorts before Up at the same
        // instant so a zero-length outage still drains the device.
        self.events.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite fault times")
                .then(a.device.cmp(&b.device))
                .then((a.kind == FaultKind::Up).cmp(&(b.kind == FaultKind::Up)))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time_then_device_then_down_first() {
        let plan = FaultPlan::none().up(1, 5.0).down(0, 5.0).down(1, 2.0);
        let kinds: Vec<_> = plan.events().iter().map(|e| (e.t_s, e.device, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![(2.0, 1, FaultKind::Down), (5.0, 0, FaultKind::Down), (5.0, 1, FaultKind::Up)]
        );
    }

    #[test]
    fn outage_is_down_then_up() {
        let plan = FaultPlan::none().outage(2, 10.0, 20.0);
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::Down);
        assert_eq!(plan.events()[1].kind, FaultKind::Up);
    }

    #[test]
    #[should_panic(expected = "recovery precedes dropout")]
    fn inverted_outage_panics() {
        let _ = FaultPlan::none().outage(0, 20.0, 10.0);
    }
}
