//! Scripted device-fault injection.
//!
//! A [`FaultPlan`] is a deterministic schedule of dropout/recovery events
//! the fleet co-simulator applies at exact instants: on a
//! [`FaultKind::Down`] the device's queued and in-flight requests are
//! drained and re-routed (nothing is lost); on a [`FaultKind::Up`] the
//! device rejoins the eligible set and any requests held while the whole
//! fleet was dark are re-submitted.
//!
//! Beyond outages, the plan carries mid-run *knob* events exercising the
//! regimes edge serving actually fails in: a co-tenant claiming KV memory
//! ([`FaultKind::KvShrink`]), a thermal governor stepping the power mode
//! down ([`FaultKind::PowerFlip`]), a client abandoning a request
//! ([`FaultKind::Cancel`]), and an NTP-style clock jump on one device
//! ([`FaultKind::ClockSkew`]). All payloads are plain integers so the
//! plan stays `Copy + Eq` — a shrinking minimizer can slice it freely.

/// What happens to the device at the event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device drops out; its unfinished work is re-routed.
    Down,
    /// The device recovers and rejoins the routing set.
    Up,
    /// The device's KV pool shrinks to `permille`/1000 of its current
    /// size (floored at one block); live sequences that no longer fit
    /// are preempted with the recompute penalty.
    KvShrink {
        /// New pool size, in thousandths of the current size.
        permille: u16,
    },
    /// The device flips to stock power mode `index` (modulo the
    /// registry's mode count), rebuilding its perf/power operating point.
    PowerFlip {
        /// Index into the device's stock power-mode registry.
        index: u8,
    },
    /// Request `rid` is cancelled wherever it stands — router hold
    /// queue or any device — releasing its KV. The event's device index
    /// is ignored; an already-completed `rid` is a no-op.
    Cancel {
        /// Id of the request to cancel.
        rid: u64,
    },
    /// The device's local clock jumps `ahead_ms` forward (unbilled, as
    /// after an outage). Quiescent devices only; live ones ignore it.
    ClockSkew {
        /// Jump size in milliseconds.
        ahead_ms: u32,
    },
}

impl FaultKind {
    /// Same-instant ordering rank: dropouts first (so a zero-length
    /// outage still drains the device), then mid-run knobs, recoveries
    /// last (a recovered device sees the instant's knob state).
    fn rank(self) -> u8 {
        match self {
            FaultKind::Down => 0,
            FaultKind::KvShrink { .. }
            | FaultKind::PowerFlip { .. }
            | FaultKind::Cancel { .. }
            | FaultKind::ClockSkew { .. } => 1,
            FaultKind::Up => 2,
        }
    }
}

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires (s, fleet clock).
    pub t_s: f64,
    /// Index of the device it applies to.
    pub device: usize,
    /// Dropout or recovery.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule a dropout at `t_s`.
    pub fn down(mut self, device: usize, t_s: f64) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::Down });
        self.sort();
        self
    }

    /// Schedule a recovery at `t_s`.
    pub fn up(mut self, device: usize, t_s: f64) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::Up });
        self.sort();
        self
    }

    /// A dropout at `down_s` followed by recovery at `up_s`.
    pub fn outage(self, device: usize, down_s: f64, up_s: f64) -> Self {
        assert!(up_s >= down_s, "recovery precedes dropout");
        self.down(device, down_s).up(device, up_s)
    }

    /// Shrink `device`'s KV pool to `permille`/1000 of its size at `t_s`.
    pub fn kv_shrink(mut self, device: usize, t_s: f64, permille: u16) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::KvShrink { permille } });
        self.sort();
        self
    }

    /// Flip `device` to stock power mode `index` at `t_s`.
    pub fn power_flip(mut self, device: usize, t_s: f64, index: u8) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::PowerFlip { index } });
        self.sort();
        self
    }

    /// Cancel request `rid` at `t_s`, wherever it stands in the fleet.
    pub fn cancel(mut self, t_s: f64, rid: u64) -> Self {
        self.events.push(FaultEvent { t_s, device: 0, kind: FaultKind::Cancel { rid } });
        self.sort();
        self
    }

    /// Jump `device`'s quiescent clock `ahead_ms` forward at `t_s`.
    pub fn clock_skew(mut self, device: usize, t_s: f64, ahead_ms: u32) -> Self {
        self.events.push(FaultEvent { t_s, device, kind: FaultKind::ClockSkew { ahead_ms } });
        self.sort();
        self
    }

    /// Rebuild a plan from an explicit event list (re-sorted into firing
    /// order) — how a shrinking minimizer slices a generated plan.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        let mut plan = FaultPlan { events };
        plan.sort();
        plan
    }

    /// The scheduled events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn sort(&mut self) {
        // Stable by (time, device, kind rank): Down sorts before same-
        // instant knobs, Up last.
        self.events.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite fault times")
                .then(a.device.cmp(&b.device))
                .then(a.kind.rank().cmp(&b.kind.rank()))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time_then_device_then_down_first() {
        let plan = FaultPlan::none().up(1, 5.0).down(0, 5.0).down(1, 2.0);
        let kinds: Vec<_> = plan.events().iter().map(|e| (e.t_s, e.device, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![(2.0, 1, FaultKind::Down), (5.0, 0, FaultKind::Down), (5.0, 1, FaultKind::Up)]
        );
    }

    #[test]
    fn outage_is_down_then_up() {
        let plan = FaultPlan::none().outage(2, 10.0, 20.0);
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::Down);
        assert_eq!(plan.events()[1].kind, FaultKind::Up);
    }

    #[test]
    #[should_panic(expected = "recovery precedes dropout")]
    fn inverted_outage_panics() {
        let _ = FaultPlan::none().outage(0, 20.0, 10.0);
    }

    #[test]
    fn knobs_sort_between_down_and_up() {
        let plan =
            FaultPlan::none().up(0, 5.0).kv_shrink(0, 5.0, 500).down(0, 5.0).power_flip(0, 5.0, 2);
        let kinds: Vec<_> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Down,
                FaultKind::KvShrink { permille: 500 },
                FaultKind::PowerFlip { index: 2 },
                FaultKind::Up,
            ]
        );
    }

    #[test]
    fn from_events_round_trips_and_resorts() {
        let plan = FaultPlan::none().outage(1, 2.0, 8.0).cancel(4.0, 17).clock_skew(0, 3.0, 250);
        let mut shuffled: Vec<FaultEvent> = plan.events().to_vec();
        shuffled.reverse();
        assert_eq!(FaultPlan::from_events(shuffled), plan);
    }
}
