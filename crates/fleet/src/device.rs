//! One fleet member: a configured device wrapping a steppable
//! [`ServeSim`], plus health state and an optional thermal guard.

use edgellm_core::serve::{GovernorHook, ServeConfig, ServeSim};
use edgellm_core::{Request, RunConfig, RunError};
use edgellm_governor::{cost, Governor, GovernorPolicy};
use edgellm_hw::DeviceSpec;
use edgellm_power::ThermalModel;

use crate::routing::DeviceView;

/// How far below the trip limit the junction must cool before a
/// thermally-tripped device rejoins the fleet (°C).
pub const THERMAL_REARM_MARGIN_C: f64 = 10.0;

/// Configuration of one fleet member.
#[derive(Debug, Clone)]
pub struct FleetDevice {
    /// Display name used in reports (defaults to the device spec name).
    pub name: String,
    /// The hardware.
    pub device: DeviceSpec,
    /// Model, precision and power mode this member serves with.
    pub run_cfg: RunConfig,
    /// Scheduler knobs for the member's [`ServeSim`].
    pub serve_cfg: ServeConfig,
    /// Optional enclosure thermal model. `None` models active cooling
    /// that never trips (the paper's devkit regime).
    pub thermal: Option<ThermalModel>,
    /// Optional online power-mode governor policy. When set, the
    /// member's serve simulation consults it at every iteration
    /// boundary and retunes its power mode in flight.
    pub governor: Option<Box<dyn GovernorPolicy>>,
    /// Dwell-floor override for the governor (s). `None` keeps
    /// [`edgellm_governor::DEFAULT_MIN_DWELL_S`].
    pub governor_min_dwell: Option<f64>,
}

impl FleetDevice {
    /// A member with default chunked-prefill serving and active cooling.
    pub fn new(device: DeviceSpec, run_cfg: RunConfig) -> Self {
        FleetDevice {
            name: device.name.to_string(),
            device,
            run_cfg,
            serve_cfg: ServeConfig::chunked(16),
            thermal: None,
            governor: None,
            governor_min_dwell: None,
        }
    }

    /// Override the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Override the serving configuration.
    pub fn serve(mut self, cfg: ServeConfig) -> Self {
        self.serve_cfg = cfg;
        self
    }

    /// Attach an enclosure thermal model; sustained load can now trip the
    /// device into a cooldown outage.
    pub fn thermal(mut self, model: ThermalModel) -> Self {
        self.thermal = Some(model);
        self
    }

    /// Attach an online power-mode governor; the member retunes its own
    /// power mode at iteration boundaries and the router's estimates
    /// follow every change.
    pub fn governed(mut self, policy: Box<dyn GovernorPolicy>) -> Self {
        self.governor = Some(policy);
        self
    }

    /// Override the governor's dwell floor between mode changes (s).
    pub fn governor_dwell(mut self, min_dwell_s: f64) -> Self {
        self.governor_min_dwell = Some(min_dwell_s);
        self
    }
}

/// RC junction-temperature integrator fed by the serve trace.
#[derive(Debug, Clone)]
pub(crate) struct ThermalGuard {
    model: ThermalModel,
    temp_c: f64,
    /// Trace entries already integrated.
    consumed: usize,
}

impl ThermalGuard {
    fn new(model: ThermalModel) -> Self {
        ThermalGuard { model, temp_c: model.t_ambient_c, consumed: 0 }
    }

    /// Integrate trace entries not yet seen; returns `true` when the
    /// junction reaches the trip limit.
    fn absorb(&mut self, trace: &[edgellm_core::IterationTrace]) -> bool {
        let mut tripped = false;
        for it in &trace[self.consumed.min(trace.len())..] {
            // Same RC update as power::thermal::simulate_sustained.
            let dtemp = (it.power_w * self.model.r_c_per_w
                - (self.temp_c - self.model.t_ambient_c))
                / self.model.tau_s
                * it.dt_s;
            self.temp_c += dtemp;
            if self.temp_c >= self.model.t_limit_c {
                tripped = true;
            }
        }
        self.consumed = trace.len();
        tripped
    }

    /// When a tripped device can rejoin: the analytic instant the RC
    /// decay at idle power reaches the re-arm temperature. `None` if idle
    /// steady state never cools that far (the device stays down).
    fn recovery_s(&self, now: f64, idle_power_w: f64) -> Option<f64> {
        let t_ss = self.model.steady_state_c(idle_power_w);
        let rearm = self.model.t_limit_c - THERMAL_REARM_MARGIN_C;
        if rearm <= t_ss || self.temp_c <= rearm {
            return if self.temp_c <= rearm { Some(now) } else { None };
        }
        let dt = self.model.tau_s * ((self.temp_c - t_ss) / (rearm - t_ss)).ln();
        Some(now + dt)
    }

    fn rearm(&mut self) {
        self.temp_c = self.temp_c.min(self.model.t_limit_c - THERMAL_REARM_MARGIN_C);
    }
}

/// Live simulation state of one fleet member.
#[derive(Debug, Clone)]
pub(crate) struct DeviceSim {
    pub(crate) cfg: FleetDevice,
    pub(crate) sim: ServeSim,
    pub(crate) up: bool,
    /// Thermal-cooldown end, when down for thermal reasons.
    pub(crate) down_until: Option<f64>,
    guard: Option<ThermalGuard>,
    gov: Option<Governor>,
    idle_power_w: f64,
    est_decode_tok_s: f64,
    est_energy_per_token_j: f64,
    /// Requests routed to this member (first-route + re-routes).
    pub(crate) routed: usize,
    pub(crate) thermal_trips: usize,
}

impl DeviceSim {
    /// Build the member's serve simulation sized for sequences up to
    /// `max_seq_tokens`, and pre-compute the routing estimates.
    pub(crate) fn new(cfg: FleetDevice, max_seq_tokens: u64) -> Result<Self, RunError> {
        let sim =
            ServeSim::with_seq_hint(cfg.serve_cfg, &cfg.device, &cfg.run_cfg, max_seq_tokens)?;
        let guard = cfg.thermal.as_ref().map(|m| ThermalGuard::new(*m));
        let gov = cfg.governor.clone().map(|p| {
            let g = Governor::new(
                p,
                &cfg.device,
                cfg.run_cfg.llm,
                cfg.run_cfg.precision,
                &cfg.run_cfg.power_mode,
            );
            match cfg.governor_min_dwell {
                Some(d) => g.min_dwell(d),
                None => g,
            }
        });
        let mut d = DeviceSim {
            cfg,
            sim,
            up: true,
            down_until: None,
            guard,
            gov,
            idle_power_w: 0.0,
            est_decode_tok_s: 0.0,
            est_energy_per_token_j: 0.0,
            routed: 0,
            thermal_trips: 0,
        };
        d.refresh_estimates();
        Ok(d)
    }

    /// (Re)compute the routing estimates for the simulation's current
    /// power mode through the governor's shared cost model
    /// ([`edgellm_governor::cost::mode_cost`]), so routing and governing
    /// score a mode bit-identically. Called at build time and after
    /// every mode change (governor decisions and scripted flips).
    pub(crate) fn refresh_estimates(&mut self) {
        let mc = cost::mode_cost(
            &self.cfg.device,
            self.cfg.run_cfg.llm,
            self.cfg.run_cfg.precision,
            self.sim.power_mode(),
        );
        self.idle_power_w = mc.idle_power_w;
        self.est_decode_tok_s = mc.decode_tok_s;
        self.est_energy_per_token_j = mc.energy_per_token_j;
    }

    /// The member's governor, when one is attached.
    pub(crate) fn governor(&self) -> Option<&Governor> {
        self.gov.as_ref()
    }

    /// Re-base the governor's current rung on the simulation's actual
    /// power mode, after an externally-scripted flip.
    pub(crate) fn resync_governor(&mut self) {
        if let Some(g) = &mut self.gov {
            let mode = self.sim.power_mode().clone();
            g.resync(&self.cfg.device, self.cfg.run_cfg.llm, self.cfg.run_cfg.precision, &mode);
        }
    }

    /// Snapshot this member for one routing decision. `prompt` is the
    /// routed request's prompt token ids, when known — the view's
    /// `prefix_hit_tokens` probes the member's radix cache against it
    /// (without bumping recency), so routing sees exactly what admission
    /// would reuse.
    pub(crate) fn view(&self, index: usize, prompt: Option<&[u32]>) -> DeviceView {
        DeviceView {
            index,
            up: self.up,
            now_s: self.sim.now(),
            queue_depth: self.sim.queue_depth(),
            backlog_tokens: self.sim.backlog_tokens(),
            kv_occupancy: self.sim.kv_occupancy(),
            est_decode_tok_s: self.est_decode_tok_s,
            est_energy_per_token_j: self.est_energy_per_token_j,
            prefix_hit_tokens: prompt.map_or(0, |p| self.sim.prefix_match_tokens(p)),
        }
    }

    pub(crate) fn submit(&mut self, r: &Request) {
        self.sim.submit(r);
        self.routed += 1;
    }

    pub(crate) fn submit_with_prompt(&mut self, r: &Request, prompt: &[u32]) {
        self.sim.submit_with_prompt(r, prompt);
        self.routed += 1;
    }

    /// Step the serve simulation one event; if the thermal guard trips,
    /// returns the cooldown end (`None` inner = never recovers unaided).
    ///
    /// When a governor is attached it observes the iteration right after
    /// the thermal guard integrates it (so it sees the live junction
    /// temperature) and its decision is applied at the iteration
    /// boundary — the same boundary-exact semantics as
    /// [`ServeSim::step_governed`]. A step that trips the guard skips
    /// the governor: the device is about to leave the fleet.
    pub(crate) fn step(&mut self, now: f64) -> Result<Option<Option<f64>>, RunError> {
        let mark = self.sim.trace().len();
        self.sim.step(now)?;
        if let Some(guard) = &mut self.guard {
            if guard.absorb(self.sim.trace()) {
                self.thermal_trips += 1;
                let recover = guard.recovery_s(self.sim.now(), self.idle_power_w);
                return Ok(Some(recover));
            }
        }
        if self.sim.trace().len() > mark {
            if let Some(gov) = &mut self.gov {
                let temp = self.guard.as_ref().map(|g| g.temp_c);
                let decision = gov.on_iteration(&self.sim.observe(mark, temp));
                if let Some(pm) = decision {
                    self.sim.set_power_mode(&pm)?;
                    self.refresh_estimates();
                }
            }
        }
        Ok(None)
    }

    /// Bring a thermally-tripped device back: reset the junction to the
    /// re-arm temperature.
    pub(crate) fn rearm_thermal(&mut self) {
        if let Some(g) = &mut self.guard {
            g.rearm();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_models::{Llm, Precision};

    #[test]
    fn estimates_rank_devices_sensibly() {
        let agx = DeviceSim::new(
            FleetDevice::new(
                DeviceSpec::orin_agx_64gb(),
                RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
            ),
            512,
        )
        .unwrap();
        let nx = DeviceSim::new(
            FleetDevice::new(
                DeviceSpec::orin_nx_16gb(),
                RunConfig::new(Llm::Llama31_8b, Precision::Int4)
                    .power_mode(edgellm_hw::PowerMode::maxn_for(&DeviceSpec::orin_nx_16gb())),
            ),
            512,
        )
        .unwrap();
        assert!(agx.est_decode_tok_s > nx.est_decode_tok_s, "AGX decodes faster than NX");
        assert!(agx.est_decode_tok_s > 0.0 && nx.est_energy_per_token_j > 0.0);
    }

    #[test]
    fn thermal_guard_trips_and_recovers_analytically() {
        let model = ThermalModel::orin_agx_passive();
        let mut g = ThermalGuard::new(model);
        // Sustained 45 W far exceeds the ~44 W passive cap; feed one long
        // hot entry and expect a trip.
        let hot = edgellm_core::IterationTrace {
            t_s: 4000.0,
            dt_s: 4000.0,
            phase: edgellm_core::IterPhase::Decode,
            decoding: 1,
            prefilling: 0,
            kv_blocks_used: 0,
            kv_blocks_total: 1,
            power_w: 60.0,
            tokens: 1,
        };
        assert!(g.absorb(&[hot]), "sustained over-cap load must trip");
        let rec = g.recovery_s(4000.0, 10.0).expect("idle cools below re-arm");
        assert!(rec > 4000.0, "cooling takes time");
        g.rearm();
        assert!(g.temp_c <= model.t_limit_c - THERMAL_REARM_MARGIN_C + 1e-9);
    }
}
