//! One fleet member: a configured device wrapping a steppable
//! [`ServeSim`], plus health state and an optional thermal guard.

use edgellm_core::serve::{ServeConfig, ServeSim};
use edgellm_core::{Request, RunConfig, RunError};
use edgellm_hw::DeviceSpec;
use edgellm_perf::PerfModel;
use edgellm_power::{LoadProfile, RailModel, ThermalModel};

use crate::routing::DeviceView;

/// How far below the trip limit the junction must cool before a
/// thermally-tripped device rejoins the fleet (°C).
pub const THERMAL_REARM_MARGIN_C: f64 = 10.0;

/// Configuration of one fleet member.
#[derive(Debug, Clone)]
pub struct FleetDevice {
    /// Display name used in reports (defaults to the device spec name).
    pub name: String,
    /// The hardware.
    pub device: DeviceSpec,
    /// Model, precision and power mode this member serves with.
    pub run_cfg: RunConfig,
    /// Scheduler knobs for the member's [`ServeSim`].
    pub serve_cfg: ServeConfig,
    /// Optional enclosure thermal model. `None` models active cooling
    /// that never trips (the paper's devkit regime).
    pub thermal: Option<ThermalModel>,
}

impl FleetDevice {
    /// A member with default chunked-prefill serving and active cooling.
    pub fn new(device: DeviceSpec, run_cfg: RunConfig) -> Self {
        FleetDevice {
            name: device.name.to_string(),
            device,
            run_cfg,
            serve_cfg: ServeConfig::chunked(16),
            thermal: None,
        }
    }

    /// Override the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Override the serving configuration.
    pub fn serve(mut self, cfg: ServeConfig) -> Self {
        self.serve_cfg = cfg;
        self
    }

    /// Attach an enclosure thermal model; sustained load can now trip the
    /// device into a cooldown outage.
    pub fn thermal(mut self, model: ThermalModel) -> Self {
        self.thermal = Some(model);
        self
    }
}

/// RC junction-temperature integrator fed by the serve trace.
#[derive(Debug, Clone)]
pub(crate) struct ThermalGuard {
    model: ThermalModel,
    temp_c: f64,
    /// Trace entries already integrated.
    consumed: usize,
}

impl ThermalGuard {
    fn new(model: ThermalModel) -> Self {
        ThermalGuard { model, temp_c: model.t_ambient_c, consumed: 0 }
    }

    /// Integrate trace entries not yet seen; returns `true` when the
    /// junction reaches the trip limit.
    fn absorb(&mut self, trace: &[edgellm_core::IterationTrace]) -> bool {
        let mut tripped = false;
        for it in &trace[self.consumed.min(trace.len())..] {
            // Same RC update as power::thermal::simulate_sustained.
            let dtemp = (it.power_w * self.model.r_c_per_w
                - (self.temp_c - self.model.t_ambient_c))
                / self.model.tau_s
                * it.dt_s;
            self.temp_c += dtemp;
            if self.temp_c >= self.model.t_limit_c {
                tripped = true;
            }
        }
        self.consumed = trace.len();
        tripped
    }

    /// When a tripped device can rejoin: the analytic instant the RC
    /// decay at idle power reaches the re-arm temperature. `None` if idle
    /// steady state never cools that far (the device stays down).
    fn recovery_s(&self, now: f64, idle_power_w: f64) -> Option<f64> {
        let t_ss = self.model.steady_state_c(idle_power_w);
        let rearm = self.model.t_limit_c - THERMAL_REARM_MARGIN_C;
        if rearm <= t_ss || self.temp_c <= rearm {
            return if self.temp_c <= rearm { Some(now) } else { None };
        }
        let dt = self.model.tau_s * ((self.temp_c - t_ss) / (rearm - t_ss)).ln();
        Some(now + dt)
    }

    fn rearm(&mut self) {
        self.temp_c = self.temp_c.min(self.model.t_limit_c - THERMAL_REARM_MARGIN_C);
    }
}

/// Live simulation state of one fleet member.
#[derive(Debug, Clone)]
pub(crate) struct DeviceSim {
    pub(crate) cfg: FleetDevice,
    pub(crate) sim: ServeSim,
    pub(crate) up: bool,
    /// Thermal-cooldown end, when down for thermal reasons.
    pub(crate) down_until: Option<f64>,
    guard: Option<ThermalGuard>,
    idle_power_w: f64,
    est_decode_tok_s: f64,
    est_energy_per_token_j: f64,
    /// Requests routed to this member (first-route + re-routes).
    pub(crate) routed: usize,
    pub(crate) thermal_trips: usize,
}

impl DeviceSim {
    /// Build the member's serve simulation sized for sequences up to
    /// `max_seq_tokens`, and pre-compute the routing estimates.
    pub(crate) fn new(cfg: FleetDevice, max_seq_tokens: u64) -> Result<Self, RunError> {
        let sim =
            ServeSim::with_seq_hint(cfg.serve_cfg, &cfg.device, &cfg.run_cfg, max_seq_tokens)?;
        let clocks = cfg.run_cfg.power_mode.clocks;
        let perf =
            PerfModel::new(cfg.device.clone(), cfg.run_cfg.llm, cfg.run_cfg.precision, clocks);
        let maxn = PerfModel::new(
            cfg.device.clone(),
            cfg.run_cfg.llm,
            cfg.run_cfg.precision,
            cfg.device.max_clocks(),
        );
        let bw_ratio = perf.effective_bandwidth() / maxn.effective_bandwidth();
        let rails = RailModel::orin_agx(cfg.device.clone());
        let idle_power_w = rails.total_w(&clocks, &LoadProfile::idle());
        // Routing estimates at a representative operating point: a
        // 4-deep decode batch over the paper's 96-token context.
        let (bs, ctx) = (4u64, 96u64);
        let est_decode_tok_s = bs as f64 / perf.decode_step_time(bs, ctx);
        let u = perf.decode_utilization(bs, ctx);
        let p_w = rails.total_w(
            &clocks,
            &LoadProfile { gpu_util: u.gpu, cpu_util: u.cpu, bw_util: u.mem_bw, bw_ratio },
        );
        let est_energy_per_token_j = p_w / est_decode_tok_s;
        let guard = cfg.thermal.map(ThermalGuard::new);
        Ok(DeviceSim {
            cfg,
            sim,
            up: true,
            down_until: None,
            guard,
            idle_power_w,
            est_decode_tok_s,
            est_energy_per_token_j,
            routed: 0,
            thermal_trips: 0,
        })
    }

    pub(crate) fn view(&self, index: usize) -> DeviceView {
        DeviceView {
            index,
            up: self.up,
            now_s: self.sim.now(),
            queue_depth: self.sim.queue_depth(),
            backlog_tokens: self.sim.backlog_tokens(),
            kv_occupancy: self.sim.kv_occupancy(),
            est_decode_tok_s: self.est_decode_tok_s,
            est_energy_per_token_j: self.est_energy_per_token_j,
        }
    }

    pub(crate) fn submit(&mut self, r: &Request) {
        self.sim.submit(r);
        self.routed += 1;
    }

    /// Step the serve simulation one event; if the thermal guard trips,
    /// returns the cooldown end (`None` inner = never recovers unaided).
    pub(crate) fn step(&mut self, now: f64) -> Result<Option<Option<f64>>, RunError> {
        self.sim.step(now)?;
        if let Some(guard) = &mut self.guard {
            if guard.absorb(self.sim.trace()) {
                self.thermal_trips += 1;
                let recover = guard.recovery_s(self.sim.now(), self.idle_power_w);
                return Ok(Some(recover));
            }
        }
        Ok(None)
    }

    /// Bring a thermally-tripped device back: reset the junction to the
    /// re-arm temperature.
    pub(crate) fn rearm_thermal(&mut self) {
        if let Some(g) = &mut self.guard {
            g.rearm();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm_models::{Llm, Precision};

    #[test]
    fn estimates_rank_devices_sensibly() {
        let agx = DeviceSim::new(
            FleetDevice::new(
                DeviceSpec::orin_agx_64gb(),
                RunConfig::new(Llm::Llama31_8b, Precision::Fp16),
            ),
            512,
        )
        .unwrap();
        let nx = DeviceSim::new(
            FleetDevice::new(
                DeviceSpec::orin_nx_16gb(),
                RunConfig::new(Llm::Llama31_8b, Precision::Int4)
                    .power_mode(edgellm_hw::PowerMode::maxn_for(&DeviceSpec::orin_nx_16gb())),
            ),
            512,
        )
        .unwrap();
        assert!(agx.est_decode_tok_s > nx.est_decode_tok_s, "AGX decodes faster than NX");
        assert!(agx.est_decode_tok_s > 0.0 && nx.est_energy_per_token_j > 0.0);
    }

    #[test]
    fn thermal_guard_trips_and_recovers_analytically() {
        let model = ThermalModel::orin_agx_passive();
        let mut g = ThermalGuard::new(model);
        // Sustained 45 W far exceeds the ~44 W passive cap; feed one long
        // hot entry and expect a trip.
        let hot = edgellm_core::IterationTrace {
            t_s: 4000.0,
            dt_s: 4000.0,
            phase: edgellm_core::IterPhase::Decode,
            decoding: 1,
            prefilling: 0,
            kv_blocks_used: 0,
            kv_blocks_total: 1,
            power_w: 60.0,
            tokens: 1,
        };
        assert!(g.absorb(&[hot]), "sustained over-cap load must trip");
        let rec = g.recovery_s(4000.0, 10.0).expect("idle cools below re-arm");
        assert!(rec > 4000.0, "cooling takes time");
        g.rearm();
        assert!(g.temp_c <= model.t_limit_c - THERMAL_REARM_MARGIN_C + 1e-9);
    }
}
