//! Pluggable request-routing policies for the fleet front-end.
//!
//! A [`RoutingPolicy`] sees one [`DeviceView`] snapshot per device at each
//! routing instant (fresh arrivals and fault-driven re-routes) and picks a
//! [`Decision`]. All supplied policies are deterministic: identical
//! snapshots produce identical decisions, which is what makes whole fleet
//! runs reproducible seed-for-seed.

use edgellm_core::Request;

/// A routing-time snapshot of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceView {
    /// Index of the device in the fleet.
    pub index: usize,
    /// Whether the device is currently eligible for traffic.
    pub up: bool,
    /// Device-local clock (s) — how far this device has simulated.
    pub now_s: f64,
    /// Requests queued or in flight on the device.
    pub queue_depth: usize,
    /// Tokens of work (remaining prompt + remaining output) ahead of a
    /// new arrival.
    pub backlog_tokens: u64,
    /// KV pool occupancy in [0, 1].
    pub kv_occupancy: f64,
    /// Estimated steady decode throughput (tok/s) at this device's power
    /// mode — computed once from the calibrated performance model.
    pub est_decode_tok_s: f64,
    /// Estimated serving energy per output token (J/token).
    pub est_energy_per_token_j: f64,
    /// Tokens of the routed request's prompt already resident in this
    /// device's radix prefix cache (0 when the device serves without a
    /// prefix cache, or when the request carries no prompt tokens).
    pub prefix_hit_tokens: u64,
}

impl DeviceView {
    /// Estimated end-to-end latency a request routed here would see:
    /// time already elapsed since its arrival, plus the backlog and its
    /// own tokens draining at the estimated decode rate.
    pub fn est_latency_s(&self, req: &Request) -> f64 {
        let work = self.backlog_tokens + req.input_tokens + req.output_tokens;
        (self.now_s - req.arrival_s).max(0.0) + work as f64 / self.est_decode_tok_s.max(1e-9)
    }
}

/// Where a request goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Submit to the fleet device at this index.
    Device(usize),
    /// Offload to the configured cloud endpoint (policies should only
    /// return this when the fleet has one; the simulator falls back to
    /// the least-loaded device otherwise).
    Cloud,
}

/// A deterministic request router.
pub trait RoutingPolicy {
    /// Short stable name used in reports and goldens.
    fn name(&self) -> &'static str;

    /// Route one request given per-device snapshots (one per device, in
    /// fleet index order; down devices are included with `up == false`).
    fn route(&mut self, req: &Request, devices: &[DeviceView]) -> Decision;
}

fn up(devices: &[DeviceView]) -> impl Iterator<Item = &DeviceView> {
    devices.iter().filter(|d| d.up)
}

/// Pick the up device minimizing a finite float key; ties go to the
/// lowest index. Falls back to device 0 if everything is down (the
/// simulator re-checks eligibility and holds the request in that case).
fn argmin_by<F: Fn(&DeviceView) -> f64>(devices: &[DeviceView], key: F) -> Decision {
    let best = up(devices)
        .map(|d| (d.index, key(d)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite key").then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Decision::Device(best)
}

/// Cycle through up devices in index order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &Request, devices: &[DeviceView]) -> Decision {
        let n = devices.len().max(1);
        for off in 0..n {
            let i = (self.next + off) % n;
            if devices[i].up {
                self.next = i + 1;
                return Decision::Device(i);
            }
        }
        Decision::Device(self.next % n)
    }
}

/// Send each request to the device with the fewest queued + live
/// requests.
#[derive(Debug, Clone, Default)]
pub struct JoinShortestQueue;

impl RoutingPolicy for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "join-shortest-queue"
    }

    fn route(&mut self, _req: &Request, devices: &[DeviceView]) -> Decision {
        argmin_by(devices, |d| d.queue_depth as f64)
    }
}

/// Send each request to the device with the most free KV pool, breaking
/// ties on queue depth — avoids concentrating cache pressure (and the
/// preemption recompute it causes) on one board.
#[derive(Debug, Clone, Default)]
pub struct LeastKvPressure;

impl RoutingPolicy for LeastKvPressure {
    fn name(&self) -> &'static str {
        "least-kv-pressure"
    }

    fn route(&mut self, _req: &Request, devices: &[DeviceView]) -> Decision {
        argmin_by(devices, |d| d.kv_occupancy * 1e6 + d.queue_depth as f64)
    }
}

/// Route to the device holding the longest cached prefix of the
/// request's prompt — a warm radix cache lets admission skip the cached
/// tokens' prefill compute and energy entirely, which beats any
/// load-balancing gain for shared-system-prompt traffic. When no device
/// has cached anything (cold caches, prompt-less requests, or members
/// serving without a prefix cache), falls back to
/// [`LeastKvPressure`]'s scoring so the policy degrades to sane
/// balancing instead of pinning everything on device 0.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinity;

impl RoutingPolicy for PrefixAffinity {
    fn name(&self) -> &'static str {
        "prefix-affinity"
    }

    fn route(&mut self, _req: &Request, devices: &[DeviceView]) -> Decision {
        let warm = up(devices)
            .filter(|d| d.prefix_hit_tokens > 0)
            .map(|d| (d.index, d.prefix_hit_tokens))
            // Longest hit wins; ties go to the lowest index (the
            // comparator makes the lower index strictly greater, so the
            // max is unique).
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        match warm {
            Some((i, _)) => Decision::Device(i),
            None => argmin_by(devices, |d| d.kv_occupancy * 1e6 + d.queue_depth as f64),
        }
    }
}

/// Greedily fill the most energy-efficient device first, spilling to the
/// next-cheapest once its backlog exceeds `max_backlog_tokens` — the
/// consolidation strategy an energy-constrained deployment runs.
#[derive(Debug, Clone)]
pub struct EnergyGreedy {
    /// Backlog (tokens) past which a device is considered full and the
    /// next-cheapest one is used instead.
    pub max_backlog_tokens: u64,
}

impl Default for EnergyGreedy {
    fn default() -> Self {
        EnergyGreedy { max_backlog_tokens: 1536 }
    }
}

impl RoutingPolicy for EnergyGreedy {
    fn name(&self) -> &'static str {
        "energy-greedy"
    }

    fn route(&mut self, _req: &Request, devices: &[DeviceView]) -> Decision {
        let open = up(devices)
            .filter(|d| d.backlog_tokens <= self.max_backlog_tokens)
            .map(|d| (d.index, d.est_energy_per_token_j))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        match open {
            Some((i, _)) => Decision::Device(i),
            // Everything is past the watermark: shed to the shortest
            // backlog so the SLO does not collapse for energy's sake.
            None => argmin_by(devices, |d| d.backlog_tokens as f64),
        }
    }
}

/// Deadline-aware routing with cloud spillover: pick the device whose
/// estimated completion meets the deadline; if none can, offload to the
/// cloud endpoint rather than blow the SLO on-fleet.
#[derive(Debug, Clone)]
pub struct SloAware {
    /// End-to-end latency deadline (s) a request should meet.
    pub deadline_s: f64,
}

impl SloAware {
    /// A policy targeting the given deadline.
    pub fn new(deadline_s: f64) -> Self {
        SloAware { deadline_s }
    }
}

impl RoutingPolicy for SloAware {
    fn name(&self) -> &'static str {
        "slo-aware"
    }

    fn route(&mut self, req: &Request, devices: &[DeviceView]) -> Decision {
        let best = up(devices)
            .map(|d| (d.index, d.est_latency_s(req)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        match best {
            Some((i, est)) if est <= self.deadline_s => Decision::Device(i),
            Some(_) => Decision::Cloud,
            None => Decision::Cloud,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(index: usize, queue: usize, backlog: u64, kv: f64, e_tok: f64) -> DeviceView {
        DeviceView {
            index,
            up: true,
            now_s: 0.0,
            queue_depth: queue,
            backlog_tokens: backlog,
            kv_occupancy: kv,
            est_decode_tok_s: 100.0,
            est_energy_per_token_j: e_tok,
            prefix_hit_tokens: 0,
        }
    }

    fn req(id: u64) -> Request {
        Request { id, arrival_s: 0.0, input_tokens: 32, output_tokens: 64 }
    }

    #[test]
    fn round_robin_cycles_and_skips_down() {
        let mut views =
            vec![view(0, 0, 0, 0.0, 1.0), view(1, 0, 0, 0.0, 1.0), view(2, 0, 0, 0.0, 1.0)];
        let mut rr = RoundRobin::default();
        assert_eq!(rr.route(&req(0), &views), Decision::Device(0));
        assert_eq!(rr.route(&req(1), &views), Decision::Device(1));
        views[2].up = false;
        assert_eq!(rr.route(&req(2), &views), Decision::Device(0), "skips the down device");
    }

    #[test]
    fn jsq_picks_min_queue_lowest_index_on_tie() {
        let views = vec![view(0, 3, 0, 0.0, 1.0), view(1, 1, 0, 0.0, 1.0), view(2, 1, 0, 0.0, 1.0)];
        assert_eq!(JoinShortestQueue.route(&req(0), &views), Decision::Device(1));
    }

    #[test]
    fn least_kv_prefers_free_pool() {
        let views = vec![view(0, 0, 0, 0.9, 1.0), view(1, 5, 0, 0.1, 1.0)];
        assert_eq!(LeastKvPressure.route(&req(0), &views), Decision::Device(1));
    }

    #[test]
    fn prefix_affinity_chases_the_longest_cached_prefix() {
        let mut views = vec![view(0, 0, 0, 0.2, 1.0), view(1, 9, 0, 0.9, 1.0)];
        views[1].prefix_hit_tokens = 96;
        let mut p = PrefixAffinity;
        assert_eq!(
            p.route(&req(0), &views),
            Decision::Device(1),
            "a warm cache outranks load: skipped prefill beats a shorter queue"
        );
        views[0].prefix_hit_tokens = 96;
        assert_eq!(p.route(&req(1), &views), Decision::Device(0), "hit ties go to lowest index");
        views[1].up = false;
        views[0].prefix_hit_tokens = 0;
        views[1].prefix_hit_tokens = 128;
        assert_eq!(p.route(&req(2), &views), Decision::Device(0), "down devices are ignored");
    }

    #[test]
    fn prefix_affinity_cold_falls_back_to_least_kv_pressure() {
        let views = vec![view(0, 0, 0, 0.9, 1.0), view(1, 5, 0, 0.1, 1.0)];
        assert_eq!(
            PrefixAffinity.route(&req(0), &views),
            LeastKvPressure.route(&req(0), &views),
            "no hits anywhere → identical to least-kv-pressure"
        );
    }

    #[test]
    fn energy_greedy_fills_cheapest_then_spills() {
        let mut views = vec![view(0, 0, 0, 0.0, 2.0), view(1, 0, 0, 0.0, 0.5)];
        let mut p = EnergyGreedy::default();
        assert_eq!(p.route(&req(0), &views), Decision::Device(1), "cheapest first");
        views[1].backlog_tokens = p.max_backlog_tokens + 1;
        assert_eq!(p.route(&req(1), &views), Decision::Device(0), "spills when full");
    }

    #[test]
    fn slo_aware_offloads_when_no_device_meets_deadline() {
        let mut views = vec![view(0, 0, 100_000, 0.0, 1.0)];
        let mut p = SloAware::new(5.0);
        assert_eq!(p.route(&req(0), &views), Decision::Cloud);
        views[0].backlog_tokens = 0;
        assert_eq!(p.route(&req(0), &views), Decision::Device(0));
    }
}
