//! Transformer architecture descriptions with derived parameter counts.

use crate::precision::Precision;

/// How the HuggingFace `transformers` stack executes attention for a model.
///
/// This matters for the *memory* model: the eager path materializes the full
/// `batch × heads × q_len × kv_len` attention-score matrix in FP32, which is
/// the mechanism behind Phi-2's out-of-memory failures at long sequence
/// lengths in the paper's Table 6/7 (see `edgellm-mem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionImpl {
    /// Eager attention: materialized score matrices (Phi-2 at the paper's
    /// `transformers` version).
    Eager,
    /// Memory-efficient scaled-dot-product attention (Llama/Mistral/Qwen).
    Sdpa,
}

/// A dense decoder-only transformer architecture.
///
/// Parameter counts are *derived* from these dimensions rather than stored,
/// so that custom/what-if architectures stay consistent automatically.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArch {
    /// Human-readable name (matches the paper's Table 1 naming).
    pub name: &'static str,
    /// HuggingFace model id.
    pub hf_id: &'static str,
    /// Number of transformer layers.
    pub layers: u32,
    /// Model (residual-stream) width.
    pub hidden: u32,
    /// Number of query heads.
    pub heads: u32,
    /// Number of key/value heads (< `heads` ⇒ grouped-query attention).
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// MLP intermediate width.
    pub ffn: u32,
    /// Whether the MLP is gated (SwiGLU: 3 projections) or plain (2).
    pub gated_mlp: bool,
    /// Vocabulary size.
    pub vocab: u32,
    /// Whether input embeddings and LM head share weights.
    pub tied_embeddings: bool,
    /// Whether linear layers carry bias terms (Phi-2: yes; Qwen: QKV only —
    /// biases are a rounding error for counts so one flag suffices).
    pub has_bias: bool,
    /// Attention execution path (memory-model relevant).
    pub attention: AttentionImpl,
    /// Whether the KV cache is held in FP32 (Phi-2's modeling code upcasts
    /// attention to FP32; others cache at the compute precision, FP16).
    pub fp32_kv_cache: bool,
    /// Maximum context length the model supports.
    pub max_context: u32,
}

impl ModelArch {
    /// Width of the concatenated query projection output.
    pub fn q_dim(&self) -> u64 {
        self.heads as u64 * self.head_dim as u64
    }

    /// Width of each of the key/value projection outputs.
    pub fn kv_dim(&self) -> u64 {
        self.kv_heads as u64 * self.head_dim as u64
    }

    /// Parameters in the token-embedding matrices (input, plus output LM
    /// head when untied). These stay FP16 under BitsAndBytes quantization.
    pub fn embedding_params(&self) -> u64 {
        let one = self.vocab as u64 * self.hidden as u64;
        if self.tied_embeddings {
            one
        } else {
            2 * one
        }
    }

    /// Parameters in one transformer layer's attention block.
    pub fn attn_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let q = h * self.q_dim();
        let kv = 2 * h * self.kv_dim();
        let o = self.q_dim() * h;
        let bias = if self.has_bias { self.q_dim() + 2 * self.kv_dim() + h } else { 0 };
        q + kv + o + bias
    }

    /// Parameters in one transformer layer's MLP block.
    pub fn mlp_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        let mats = if self.gated_mlp { 3 } else { 2 };
        let bias = if self.has_bias { f + h } else { 0 };
        mats * h * f + bias
    }

    /// Normalization parameters (two norms per layer plus a final norm).
    pub fn norm_params(&self) -> u64 {
        let per_layer = if self.has_bias { 4 } else { 2 }; // weight (+bias)
        (self.layers as u64 * per_layer + 1) * self.hidden as u64
    }

    /// Total parameter count derived from the dimensions.
    pub fn param_count(&self) -> u64 {
        self.embedding_params()
            + self.layers as u64 * (self.attn_params_per_layer() + self.mlp_params_per_layer())
            + self.norm_params()
    }

    /// Parameters outside the embeddings (the part BitsAndBytes quantizes).
    pub fn non_embedding_params(&self) -> u64 {
        self.param_count() - self.embedding_params()
    }

    /// Bytes needed to hold the weights at a storage precision, following
    /// the BitsAndBytes convention: INT8/INT4 quantize only the transformer
    /// linears while embeddings and the LM head remain FP16.
    ///
    /// Validated against the paper's Table 1 (e.g. Llama-3.1-8B: 32.2 GB
    /// FP32, 16.1 GB FP16, 9.1 GB INT8, 5.6 GB INT4).
    pub fn weight_bytes(&self, prec: Precision) -> u64 {
        match prec {
            Precision::Fp32 => self.param_count() * 4,
            Precision::Fp16 => self.param_count() * 2,
            Precision::Int8 | Precision::Int4 => {
                let quantized =
                    (self.non_embedding_params() as f64 * prec.bytes_per_param()) as u64;
                quantized + self.embedding_params() * 2
            }
        }
    }

    /// Bytes appended to the KV cache per token per sequence (all layers).
    pub fn kv_bytes_per_token(&self) -> u64 {
        let elem = if self.fp32_kv_cache { 4 } else { 2 };
        2 * self.layers as u64 * self.kv_dim() * elem
    }

    /// Grouped-query sharing factor (1 = MHA, >1 = GQA).
    pub fn gqa_factor(&self) -> u32 {
        self.heads / self.kv_heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Llm;

    fn billions(n: u64) -> f64 {
        n as f64 / 1e9
    }

    #[test]
    fn phi2_param_count_matches_paper() {
        let a = Llm::Phi2.arch();
        let b = billions(a.param_count());
        assert!((b - 2.78).abs() < 0.05, "Phi-2 params {b}B");
    }

    #[test]
    fn llama31_param_count_matches_paper() {
        let a = Llm::Llama31_8b.arch();
        let b = billions(a.param_count());
        assert!((b - 8.03).abs() < 0.08, "Llama params {b}B");
    }

    #[test]
    fn mistral_param_count_matches_paper() {
        let a = Llm::MistralSmall24b.arch();
        let b = billions(a.param_count());
        assert!((b - 23.6).abs() < 0.2, "Mistral params {b}B");
    }

    #[test]
    fn deepseek_param_count_matches_paper() {
        let a = Llm::DeepseekQwen32b.arch();
        let b = billions(a.param_count());
        assert!((b - 32.8).abs() < 0.3, "DeepQ params {b}B");
    }

    #[test]
    fn gqa_factors() {
        assert_eq!(Llm::Phi2.arch().gqa_factor(), 1); // MHA
        assert_eq!(Llm::Llama31_8b.arch().gqa_factor(), 4);
        assert_eq!(Llm::MistralSmall24b.arch().gqa_factor(), 4);
        assert_eq!(Llm::DeepseekQwen32b.arch().gqa_factor(), 5);
    }

    #[test]
    fn phi2_kv_cache_is_fp32_and_mha_so_heavier_per_width() {
        // Phi-2 caches 2 (K,V) * 32 layers * 2560 * 4 bytes = 655 KB/token,
        // heavier than Llama's GQA FP16 cache (131 KB/token) despite Phi-2
        // being the much smaller model — the mechanism behind its OoM.
        let phi = Llm::Phi2.arch();
        let llama = Llm::Llama31_8b.arch();
        assert_eq!(phi.kv_bytes_per_token(), 2 * 32 * 2560 * 4);
        assert_eq!(llama.kv_bytes_per_token(), 2 * 32 * (8 * 128) * 2);
        assert!(phi.kv_bytes_per_token() > 4 * llama.kv_bytes_per_token());
    }

    #[test]
    fn weight_bytes_monotone_in_precision() {
        for llm in Llm::ALL {
            let a = llm.arch();
            let sizes: Vec<u64> = Precision::ALL.iter().map(|p| a.weight_bytes(*p)).collect();
            for w in sizes.windows(2) {
                assert!(w[0] > w[1], "{}: {:?}", a.name, sizes);
            }
        }
    }

    #[test]
    fn embeddings_dominate_int4_floor() {
        // INT4 footprint can never drop below 2 bytes/emb-param.
        for llm in Llm::ALL {
            let a = llm.arch();
            assert!(a.weight_bytes(Precision::Int4) > a.embedding_params() * 2);
        }
    }
}
