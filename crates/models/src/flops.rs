//! Analytic FLOP and byte-traffic counts for prefill and decode.
//!
//! These are the standard dense-transformer counts: every generated token
//! multiplies against every (non-embedding) weight matrix once (≈ 2·P FLOPs)
//! plus attention score/value work proportional to the live context.

use crate::arch::ModelArch;
use crate::precision::Precision;

/// Analytic per-phase work estimates for a model.
#[derive(Debug, Clone, Copy)]
pub struct WorkEstimate {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes of weight traffic (reads of model parameters).
    pub weight_bytes: f64,
    /// Bytes of KV-cache traffic (reads of cached keys/values).
    pub kv_bytes: f64,
}

/// FLOPs to process one token through all dense layers (ignoring attention
/// context work): ≈ 2 FLOPs per parameter touched. The LM head is included
/// because logits are computed for every generated token.
pub fn dense_flops_per_token(arch: &ModelArch) -> f64 {
    let dense = arch.non_embedding_params() + arch.vocab as u64 * arch.hidden as u64;
    2.0 * dense as f64
}

/// FLOPs of attention score+value computation for one new token against a
/// context of `ctx` cached tokens: 2 GEMMs of `heads × head_dim × ctx`.
pub fn attn_flops_per_token(arch: &ModelArch, ctx: u64) -> f64 {
    2.0 * 2.0 * arch.layers as f64 * arch.heads as f64 * arch.head_dim as f64 * ctx as f64
}

/// Work to decode one step (one new token for each of `batch` sequences)
/// with a live per-sequence context of `ctx` tokens.
///
/// Key structure: weight traffic is paid **once per step** regardless of the
/// batch size (all sequences share the weight stream) — this is why batched
/// decode throughput scales with batch size in the paper's Fig. 1 — while
/// FLOPs and KV traffic scale with `batch`.
pub fn decode_step(arch: &ModelArch, prec: Precision, batch: u64, ctx: u64) -> WorkEstimate {
    WorkEstimate {
        flops: batch as f64 * (dense_flops_per_token(arch) + attn_flops_per_token(arch, ctx)),
        weight_bytes: arch.weight_bytes(prec) as f64,
        kv_bytes: batch as f64 * ctx as f64 * arch.kv_bytes_per_token() as f64,
    }
}

/// Work to prefill `n_in` prompt tokens for each of `batch` sequences.
/// Prefill processes all prompt tokens in one pass (compute-dominated).
pub fn prefill(arch: &ModelArch, prec: Precision, batch: u64, n_in: u64) -> WorkEstimate {
    // Average causal context during prefill is n_in/2.
    let avg_ctx = n_in / 2;
    WorkEstimate {
        flops: batch as f64
            * n_in as f64
            * (dense_flops_per_token(arch) + attn_flops_per_token(arch, avg_ctx)),
        weight_bytes: arch.weight_bytes(prec) as f64,
        kv_bytes: 0.0,
    }
}

/// Arithmetic intensity (FLOP/byte) of a decode step — compare against the
/// device ridge point to classify memory- vs compute-bound.
pub fn decode_intensity(arch: &ModelArch, prec: Precision, batch: u64, ctx: u64) -> f64 {
    let w = decode_step(arch, prec, batch, ctx);
    w.flops / (w.weight_bytes + w.kv_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Llm;

    #[test]
    fn dense_flops_approx_twice_params() {
        let a = Llm::Llama31_8b.arch();
        let f = dense_flops_per_token(&a);
        let p = a.param_count() as f64;
        assert!(f > 1.8 * p && f < 2.2 * p, "flops/param ratio {}", f / p);
    }

    #[test]
    fn weight_traffic_independent_of_batch() {
        let a = Llm::Llama31_8b.arch();
        let w1 = decode_step(&a, Precision::Fp16, 1, 64);
        let w128 = decode_step(&a, Precision::Fp16, 128, 64);
        assert_eq!(w1.weight_bytes, w128.weight_bytes);
        assert!((w128.flops / w1.flops - 128.0).abs() < 1e-6);
        assert!((w128.kv_bytes / w1.kv_bytes - 128.0).abs() < 1e-6);
    }

    #[test]
    fn decode_intensity_grows_with_batch() {
        let a = Llm::Llama31_8b.arch();
        let i1 = decode_intensity(&a, Precision::Fp16, 1, 64);
        let i64 = decode_intensity(&a, Precision::Fp16, 64, 64);
        assert!(i64 > 10.0 * i1, "batching must raise arithmetic intensity");
        // Single-sequence decode is deeply memory-bound: ~1 FLOP/byte.
        assert!(i1 < 2.0);
    }

    #[test]
    fn prefill_flops_scale_with_prompt_length() {
        let a = Llm::Phi2.arch();
        let p32 = prefill(&a, Precision::Fp16, 1, 32);
        let p256 = prefill(&a, Precision::Fp16, 1, 256);
        let r = p256.flops / p32.flops;
        assert!(r > 7.9 && r < 9.0, "ratio {r}"); // ~8x plus attention growth
    }

    #[test]
    fn attention_flops_linear_in_context() {
        let a = Llm::MistralSmall24b.arch();
        assert!(
            (attn_flops_per_token(&a, 1024) / attn_flops_per_token(&a, 512) - 2.0).abs() < 1e-9
        );
    }
}
