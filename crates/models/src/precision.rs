//! Storage precision of model weights.

use std::fmt;

/// The four weight-storage precisions the paper sweeps (§2, "Quantization").
///
/// FP16/INT8/INT4 are produced with BitsAndBytes (`LLM.int8()` for INT8,
/// NF4-style block quantization for INT4). Under INT8/INT4, BitsAndBytes
/// leaves the token embeddings and LM head in FP16 — the footprint model in
/// [`crate::footprint`] reproduces that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// Full 32-bit floating point.
    Fp32,
    /// Half precision (the paper's default serving precision).
    Fp16,
    /// 8-bit integer via LLM.int8() row-wise absmax with outlier columns.
    Int8,
    /// 4-bit block-quantile (NF4-style) quantization.
    Int4,
}

impl Precision {
    /// All precisions in Table 1 / Table 3 column order.
    pub const ALL: [Precision; 4] =
        [Precision::Fp32, Precision::Fp16, Precision::Int8, Precision::Int4];

    /// Bytes used to *store* one linear-layer weight at this precision.
    pub fn bytes_per_param(&self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
            Precision::Int8 => 1.0,
            Precision::Int4 => 0.5,
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::Fp32 => "FP32",
            Precision::Fp16 => "FP16",
            Precision::Int8 => "INT8",
            Precision::Int4 => "INT4",
        }
    }

    /// Whether this precision is produced by a BitsAndBytes quantizer (and
    /// therefore keeps embeddings/LM head in FP16 and adds dequant work).
    pub fn is_quantized(&self) -> bool {
        matches!(self, Precision::Int8 | Precision::Int4)
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths_halve_down_the_ladder() {
        let widths: Vec<f64> = Precision::ALL.iter().map(|p| p.bytes_per_param()).collect();
        assert_eq!(widths, vec![4.0, 2.0, 1.0, 0.5]);
    }

    #[test]
    fn labels_match_paper_columns() {
        let labels: Vec<&str> = Precision::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["FP32", "FP16", "INT8", "INT4"]);
    }

    #[test]
    fn only_int_precisions_are_quantized() {
        assert!(!Precision::Fp32.is_quantized());
        assert!(!Precision::Fp16.is_quantized());
        assert!(Precision::Int8.is_quantized());
        assert!(Precision::Int4.is_quantized());
    }
}
