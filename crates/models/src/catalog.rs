//! The catalog of the four SOTA models the paper evaluates (Table 1).

use crate::arch::{AttentionImpl, ModelArch};

/// The four language models of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Llm {
    /// Microsoft Phi-2, 2.7B parameters.
    Phi2,
    /// Meta Llama-3.1-8B, 8.0B parameters.
    Llama31_8b,
    /// Mistral-Small-24B-Base-2501, 23.6B parameters.
    MistralSmall24b,
    /// DeepSeek-R1-Distill-Qwen-32B, 32.8B parameters.
    DeepseekQwen32b,
}

impl Llm {
    /// All four models in Table 1 row order (smallest → largest).
    pub const ALL: [Llm; 4] =
        [Llm::Phi2, Llm::Llama31_8b, Llm::MistralSmall24b, Llm::DeepseekQwen32b];

    /// Short label used in the paper's appendix tables.
    pub fn short_name(&self) -> &'static str {
        match self {
            Llm::Phi2 => "Phi2",
            Llm::Llama31_8b => "Llama3",
            Llm::MistralSmall24b => "Mistral",
            Llm::DeepseekQwen32b => "DeepQ",
        }
    }

    /// The architecture description, from the public HF config of each model.
    pub fn arch(&self) -> ModelArch {
        match self {
            // https://huggingface.co/microsoft/phi-2/blob/main/config.json
            Llm::Phi2 => ModelArch {
                name: "Microsoft Phi-2",
                hf_id: "microsoft/phi-2",
                layers: 32,
                hidden: 2560,
                heads: 32,
                kv_heads: 32, // multi-head attention, no GQA
                head_dim: 80,
                ffn: 10240,
                gated_mlp: false, // plain GELU MLP (fc1/fc2)
                vocab: 51200,
                tied_embeddings: false,
                has_bias: true,
                attention: AttentionImpl::Eager,
                fp32_kv_cache: true, // phi modeling code upcasts attention to fp32
                max_context: 2048,
            },
            // https://huggingface.co/meta-llama/Llama-3.1-8B/blob/main/config.json
            Llm::Llama31_8b => ModelArch {
                name: "Meta Llama-3.1-8B",
                hf_id: "meta-llama/Llama-3.1-8B",
                layers: 32,
                hidden: 4096,
                heads: 32,
                kv_heads: 8,
                head_dim: 128,
                ffn: 14336,
                gated_mlp: true,
                vocab: 128256,
                tied_embeddings: false,
                has_bias: false,
                attention: AttentionImpl::Sdpa,
                fp32_kv_cache: false,
                max_context: 131072,
            },
            // https://huggingface.co/mistralai/Mistral-Small-24B-Base-2501
            Llm::MistralSmall24b => ModelArch {
                name: "Mistral-Small-24B",
                hf_id: "mistralai/Mistral-Small-24B-Base-2501",
                layers: 40,
                hidden: 5120,
                heads: 32,
                kv_heads: 8,
                head_dim: 128,
                ffn: 32768,
                gated_mlp: true,
                vocab: 131072,
                tied_embeddings: false,
                has_bias: false,
                attention: AttentionImpl::Sdpa,
                fp32_kv_cache: false,
                max_context: 32768,
            },
            // https://huggingface.co/deepseek-ai/DeepSeek-R1-Distill-Qwen-32B
            // (Qwen2.5-32B backbone)
            Llm::DeepseekQwen32b => ModelArch {
                name: "DeepSeek-R1-Qwen-32B",
                hf_id: "deepseek-ai/DeepSeek-R1-Distill-Qwen-32B",
                layers: 64,
                hidden: 5120,
                heads: 40,
                kv_heads: 8,
                head_dim: 128,
                ffn: 27648,
                gated_mlp: true,
                vocab: 152064,
                tied_embeddings: false,
                has_bias: true, // Qwen2 QKV biases
                attention: AttentionImpl::Sdpa,
                fp32_kv_cache: false,
                max_context: 131072,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_order_is_by_size() {
        let sizes: Vec<u64> = Llm::ALL.iter().map(|m| m.arch().param_count()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn short_names_match_appendix_tables() {
        let names: Vec<&str> = Llm::ALL.iter().map(|m| m.short_name()).collect();
        assert_eq!(names, ["Phi2", "Llama3", "Mistral", "DeepQ"]);
    }

    #[test]
    fn only_phi2_uses_eager_attention_and_fp32_cache() {
        for m in Llm::ALL {
            let a = m.arch();
            let is_phi = m == Llm::Phi2;
            assert_eq!(a.attention == AttentionImpl::Eager, is_phi);
            assert_eq!(a.fp32_kv_cache, is_phi);
        }
    }

    #[test]
    fn head_dims_consistent() {
        for m in Llm::ALL {
            let a = m.arch();
            assert_eq!(a.q_dim(), a.heads as u64 * a.head_dim as u64);
            assert_eq!(a.q_dim() % a.head_dim as u64, 0);
            // Mistral-Small projects 5120 → 4096 (head_dim ≠ hidden/heads);
            // the others keep q_dim == hidden.
            if m != Llm::MistralSmall24b {
                assert_eq!(a.q_dim(), a.hidden as u64);
            }
        }
    }
}
