//! Weight-memory footprints per precision — the paper's Table 1.

use crate::arch::ModelArch;
use crate::catalog::Llm;
use crate::precision::Precision;

/// Decimal gigabyte, matching the paper's table units.
const GB: f64 = 1e9;

/// One model's weight footprint at one precision, with a feasibility flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightFootprint {
    /// Storage precision.
    pub precision: Precision,
    /// Weight bytes in GB (decimal).
    pub gb: f64,
    /// Whether the weights fit the device's usable shared memory. The paper
    /// prints infeasible entries in red as estimates (Mistral FP32,
    /// DeepSeek FP32/FP16).
    pub loadable: bool,
}

/// A full Table 1 row: one model across the four precisions.
#[derive(Debug, Clone)]
pub struct FootprintRow {
    /// Which model.
    pub llm: Llm,
    /// Parameter count in billions.
    pub params_b: f64,
    /// Footprints in Table 1 column order (FP32, FP16, INT8, INT4).
    pub footprints: [WeightFootprint; 4],
}

/// Memory the OS + CUDA runtime reserve before any model loads. The paper's
/// appendix shows ~0.5–1 GB of slack plus the usual JetPack baseline; with
/// 64 GB total, models whose weights exceed ~62 GB fail to load.
pub const OS_RESERVED_GB: f64 = 2.0;

/// Compute a model's footprint at one precision against a capacity (GB).
pub fn footprint(arch: &ModelArch, prec: Precision, capacity_gb: f64) -> WeightFootprint {
    let gb = arch.weight_bytes(prec) as f64 / GB;
    WeightFootprint { precision: prec, gb, loadable: gb <= capacity_gb - OS_RESERVED_GB }
}

/// Build the paper's Table 1 for a device capacity (GB): all four models ×
/// four precisions.
pub fn table1(capacity_gb: f64) -> Vec<FootprintRow> {
    Llm::ALL
        .iter()
        .map(|&llm| {
            let arch = llm.arch();
            FootprintRow {
                llm,
                params_b: arch.param_count() as f64 / 1e9,
                footprints: [
                    footprint(&arch, Precision::Fp32, capacity_gb),
                    footprint(&arch, Precision::Fp16, capacity_gb),
                    footprint(&arch, Precision::Int8, capacity_gb),
                    footprint(&arch, Precision::Int4, capacity_gb),
                ],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1 in GB: (model, [fp32, fp16, int8, int4]).
    const PAPER_TABLE1: [(Llm, [f64; 4]); 4] = [
        (Llm::Phi2, [11.2, 5.6, 3.0, 1.8]),
        (Llm::Llama31_8b, [32.2, 16.1, 9.1, 5.6]),
        (Llm::MistralSmall24b, [94.2, 47.1, 24.9, 13.8]),
        // DeepSeek FP32/FP16 are the paper's own (internally inconsistent)
        // estimates — from its 32.8B count they should be ~131/65.5 GB; the
        // paper printed 124/62 (≈31B×4/×2). We accept a wider band there.
        (Llm::DeepseekQwen32b, [124.0, 62.0, 34.3, 18.7]),
    ];

    #[test]
    fn table1_matches_paper_within_tolerance() {
        let rows = table1(64.0);
        for (row, (llm, paper)) in rows.iter().zip(PAPER_TABLE1) {
            assert_eq!(row.llm, llm);
            for (fp, expect) in row.footprints.iter().zip(paper) {
                let tol = if llm == Llm::DeepseekQwen32b
                    && matches!(fp.precision, Precision::Fp32 | Precision::Fp16)
                {
                    0.07 // paper's estimate rows disagree with its own count
                } else {
                    0.04
                };
                let rel = (fp.gb - expect).abs() / expect;
                assert!(
                    rel < tol,
                    "{:?} {}: ours {:.1} GB vs paper {expect} GB (rel {rel:.3})",
                    llm,
                    fp.precision,
                    fp.gb
                );
            }
        }
    }

    #[test]
    fn loadability_matches_paper_red_entries() {
        let rows = table1(64.0);
        let get = |llm: Llm, p: Precision| {
            rows.iter()
                .find(|r| r.llm == llm)
                .unwrap()
                .footprints
                .iter()
                .find(|f| f.precision == p)
                .unwrap()
                .loadable
        };
        // Red (estimate) cells in the paper = not loadable.
        assert!(!get(Llm::MistralSmall24b, Precision::Fp32));
        assert!(!get(Llm::DeepseekQwen32b, Precision::Fp32));
        assert!(!get(Llm::DeepseekQwen32b, Precision::Fp16));
        // Everything else loads.
        assert!(get(Llm::Phi2, Precision::Fp32));
        assert!(get(Llm::Llama31_8b, Precision::Fp32));
        assert!(get(Llm::MistralSmall24b, Precision::Fp16));
        assert!(get(Llm::DeepseekQwen32b, Precision::Int8));
    }

    #[test]
    fn smaller_capacity_shrinks_feasible_set() {
        let rows16 = table1(16.0);
        let llama_fp16 = rows16.iter().find(|r| r.llm == Llm::Llama31_8b).unwrap().footprints[1];
        assert!(!llama_fp16.loadable, "16.1 GB cannot fit a 16 GB device");
        let llama_int8 = rows16.iter().find(|r| r.llm == Llm::Llama31_8b).unwrap().footprints[2];
        assert!(llama_int8.loadable);
    }
}
