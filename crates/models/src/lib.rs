//! # edgellm-models — transformer architecture specs and analytics
//!
//! Exact architecture descriptions of the four language models the paper
//! evaluates (Microsoft Phi-2, Meta Llama-3.1-8B, Mistral-Small-24B and
//! DeepSeek-R1-Distill-Qwen-32B), taken from their public Hugging Face
//! configurations, plus the analytic quantities every other crate needs:
//!
//! * parameter counts *derived from the dimensions* (validated against the
//!   paper's Table 1 figures),
//! * weight-memory footprints per storage precision (reproducing Table 1,
//!   including the BitsAndBytes convention that embeddings and the LM head
//!   stay in FP16 under INT8/INT4),
//! * per-token FLOP and byte-traffic counts for the prefill and decode
//!   phases, and KV-cache bytes per token (GQA-aware, including Phi-2's
//!   FP32 attention-cache quirk).
//!
//! ```
//! use edgellm_models::{Llm, Precision};
//! let llama = Llm::Llama31_8b.arch();
//! // ~8.0B parameters, ~16.1 GB in FP16 — matches the paper's Table 1.
//! assert!((llama.param_count() as f64 / 1e9 - 8.0).abs() < 0.1);
//! assert!((llama.weight_bytes(Precision::Fp16) as f64 / 1e9 - 16.1).abs() < 0.2);
//! ```

pub mod arch;
pub mod catalog;
pub mod flops;
pub mod footprint;
pub mod precision;

pub use arch::{AttentionImpl, ModelArch};
pub use catalog::Llm;
pub use footprint::{FootprintRow, WeightFootprint};
pub use precision::Precision;
